package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/symbol"
)

// RecType identifies a logged mutation.
type RecType byte

const (
	// RecPut adds Payload to Key's folder. Replay deliberately does NOT
	// release the folder's hidden delayed values the way a live put does:
	// each delayed entry is removed only by its own RecRelease record, so
	// an entry whose delivery was never confirmed survives recovery and is
	// re-released (deduplicated by its release token) by the next trigger.
	RecPut RecType = 1
	// RecPutDelayed hides Payload in trigger folder Key, destined for Dest.
	RecPutDelayed RecType = 2
	// RecTake removes one item byte-equal to Payload from Key's folder.
	// Folders are multisets, so "one equal item" identifies the removal
	// exactly even when the extraction rng picked a different index. A
	// non-zero Token is the take's dedup token: replay re-caches the taken
	// payload under it so a post-crash retry of the same take is answered
	// from the cache instead of consuming a second memo.
	RecTake RecType = 3
	// RecToken records an applied dedup token with no accompanying put —
	// used by snapshots to carry the token table across truncation.
	RecToken RecType = 4
	// RecRelease records that the delayed entry with release token Token
	// was durably delivered out of trigger folder Key. It is logged only
	// AFTER the re-deposit is safe (committed locally, or handed to the
	// remote dispatcher), so recovery re-releases anything still pending —
	// and the release token makes the re-delivery deduplicate instead of
	// duplicating.
	RecRelease RecType = 5
	// RecTakeCache carries a consumed-take dedup entry across snapshot
	// truncation: Token was applied by a take whose result (Key + Payload,
	// or an observed-empty miss when Empty is set) must stay answerable to
	// retries after the RecTake that produced it is compacted away. Replay
	// restores the cache entry and removes nothing.
	RecTakeCache RecType = 6
)

func (t RecType) String() string {
	switch t {
	case RecPut:
		return "put"
	case RecPutDelayed:
		return "put_delayed"
	case RecTake:
		return "take"
	case RecToken:
		return "token"
	case RecRelease:
		return "release"
	case RecTakeCache:
		return "take_cache"
	}
	return fmt.Sprintf("rec-type(%d)", byte(t))
}

// Record is one logged Store mutation. Every record describes a transition
// of exactly one folder (and therefore one shard), which is what lets the
// per-shard logs replay independently.
type Record struct {
	Type RecType
	// Key is the folder: the put/take target, or put_delayed's trigger.
	Key symbol.Key
	// Dest is put_delayed's destination folder.
	Dest symbol.Key
	// Payload is the memo payload.
	Payload []byte
	// Token is the at-most-once dedup token (0 = none). For RecRelease it
	// names the released delayed entry's release token.
	Token uint64
	// Rel is a put_delayed entry's release token: the dedup token its
	// eventual re-deposit will carry, minted when the entry is hidden so
	// that a crash-recovered re-release can never deliver twice.
	Rel uint64
	// Empty marks a RecTakeCache entry whose take observed an empty folder
	// (a get_skip miss): the cached answer is "nothing", not a payload.
	Empty bool
}

// Encoding: varint conventions matching the wire codec, but deliberately
// separate — log compatibility and wire compatibility evolve independently.

type recWriter struct{ buf []byte }

func (w *recWriter) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *recWriter) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *recWriter) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *recWriter) key(k symbol.Key) {
	w.u64(uint64(k.S))
	w.u64(uint64(len(k.X)))
	for _, x := range k.X {
		w.u64(uint64(x))
	}
}

type recReader struct {
	buf []byte
	pos int
	err error
}

func (r *recReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("durable: truncated record")
		return 0
	}
	r.pos += n
	return v
}

func (r *recReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.err = fmt.Errorf("durable: truncated record")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *recReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.err = fmt.Errorf("durable: truncated record")
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return b
}

func (r *recReader) key() symbol.Key {
	s := r.u64()
	n := r.u64()
	if r.err != nil {
		return symbol.Key{}
	}
	if n > uint64(len(r.buf)-r.pos) { // each element costs ≥ 1 byte
		r.err = fmt.Errorf("durable: truncated record")
		return symbol.Key{}
	}
	k := symbol.Key{S: symbol.Symbol(s)}
	if n > 0 {
		k.X = make([]uint32, n)
		for i := range k.X {
			k.X[i] = uint32(r.u64())
		}
	}
	return k
}

// EncodeRecord serializes a record body (framing is separate; see
// appendFrame).
func EncodeRecord(rec *Record) []byte {
	w := &recWriter{buf: make([]byte, 0, 24+len(rec.Payload))}
	w.byte(byte(rec.Type))
	switch rec.Type {
	case RecPut:
		w.key(rec.Key)
		w.bytes(rec.Payload)
		w.u64(rec.Token)
	case RecPutDelayed:
		w.key(rec.Key)
		w.key(rec.Dest)
		w.bytes(rec.Payload)
		w.u64(rec.Token)
		w.u64(rec.Rel)
	case RecTake:
		w.key(rec.Key)
		w.bytes(rec.Payload)
		w.u64(rec.Token)
	case RecToken:
		w.u64(rec.Token)
	case RecRelease:
		w.key(rec.Key)
		w.u64(rec.Token)
	case RecTakeCache:
		w.u64(rec.Token)
		w.key(rec.Key)
		if rec.Empty {
			w.byte(1)
		} else {
			w.byte(0)
		}
		w.bytes(rec.Payload)
	}
	return w.buf
}

// DecodeRecord parses a record body. It never panics on hostile input and
// rejects trailing bytes, so a frame that passed its CRC still cannot smuggle
// a malformed record past replay.
func DecodeRecord(buf []byte) (*Record, error) {
	r := &recReader{buf: buf}
	rec := &Record{}
	rec.Type = RecType(r.byte())
	switch rec.Type {
	case RecPut:
		rec.Key = r.key()
		rec.Payload = r.bytes()
		rec.Token = r.u64()
	case RecPutDelayed:
		rec.Key = r.key()
		rec.Dest = r.key()
		rec.Payload = r.bytes()
		rec.Token = r.u64()
		rec.Rel = r.u64()
	case RecTake:
		rec.Key = r.key()
		rec.Payload = r.bytes()
		rec.Token = r.u64()
	case RecToken:
		rec.Token = r.u64()
	case RecRelease:
		rec.Key = r.key()
		rec.Token = r.u64()
	case RecTakeCache:
		rec.Token = r.u64()
		rec.Key = r.key()
		rec.Empty = r.byte() != 0
		rec.Payload = r.bytes()
	default:
		if r.err == nil {
			r.err = fmt.Errorf("durable: unknown record type %d", byte(rec.Type))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("durable: %d trailing bytes in record", len(buf)-r.pos)
	}
	return rec, nil
}

// Frame format: u32le body length, u32le CRC-32C of the body, body bytes.
// A record is only as durable as its whole frame: a partial write fails the
// length or the CRC and replay stops there.

const frameHeader = 8

// maxFrameBody caps a single record frame; anything larger in a log file is
// corruption, not an allocation request.
const maxFrameBody = 1 << 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record body to dst.
func appendFrame(dst []byte, body []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// nextFrame extracts the first frame's body from buf, returning the body and
// the remainder. ok is false at a clean end or a torn tail — the caller
// cannot distinguish the two, and does not need to: both mean "no further
// acknowledged records".
func nextFrame(buf []byte) (body, rest []byte, ok bool) {
	if len(buf) < frameHeader {
		return nil, buf, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxFrameBody || uint64(n) > uint64(len(buf)-frameHeader) {
		return nil, buf, false
	}
	body = buf[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, buf, false
	}
	return body, buf[frameHeader+int(n):], true
}
