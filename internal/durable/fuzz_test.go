package durable

import (
	"bytes"
	"testing"

	"repro/internal/symbol"
)

// FuzzDecodeWALRecord drives DecodeRecord with hostile bytes: it must never
// panic, and anything it accepts must re-encode and re-decode to the same
// record (so a torn or bit-flipped frame that slips past the CRC can still
// never be "applied" as something other than what it claims to be).
func FuzzDecodeWALRecord(f *testing.F) {
	seeds := []*Record{
		{Type: RecPut, Key: symbol.K(7, 1, 2), Payload: []byte("hello"), Token: 42},
		{Type: RecPutDelayed, Key: symbol.K(9), Dest: symbol.K(11, 0, 5), Payload: []byte("hidden")},
		{Type: RecTake, Key: symbol.K(3), Payload: []byte("taken")},
		{Type: RecToken, Token: ^uint64(0)},
	}
	for _, r := range seeds {
		f.Add(EncodeRecord(r))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(RecPut)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		re := EncodeRecord(rec)
		rec2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v (orig %x)", err, data)
		}
		if rec2.Type != rec.Type || !rec2.Key.Equal(rec.Key) || !rec2.Dest.Equal(rec.Dest) ||
			!bytes.Equal(rec2.Payload, rec.Payload) || rec2.Token != rec.Token {
			t.Fatalf("unstable round trip: %+v vs %+v", rec, rec2)
		}
		// The canonical encoding must be a fixed point.
		if re2 := EncodeRecord(rec2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical: %x vs %x", re, re2)
		}
	})
}

// FuzzNextFrame drives the frame splitter: no panics, and an accepted frame
// must carry a CRC-consistent body.
func FuzzNextFrame(f *testing.F) {
	f.Add(appendFrame(nil, EncodeRecord(&Record{Type: RecToken, Token: 9})))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for i := 0; i < 1000; i++ {
			body, r, ok := nextFrame(rest)
			if !ok {
				break
			}
			if len(r) >= len(rest) {
				t.Fatal("frame made no progress")
			}
			_ = body
			rest = r
		}
	})
}
