package collect

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Future is an assign-once variable (§6.2.5): a folder that will only ever
// hold one memo. Producers Resolve it; consumers Wait (read without
// consuming, so any number of consumers see the value) or Take (consume,
// after which "the folder will vanish").
//
// Double-resolution is detected with a write token: NewFuture deposits one
// token in a guard folder, and Resolve must win it. A second Resolve finds
// the guard empty and fails with ErrAlreadyResolved — giving I-structures
// their single-assignment guarantee.
type Future struct {
	m     *core.Memo
	value symbol.Key
	guard symbol.Key
}

// NewFuture creates an unresolved future.
func NewFuture(m *core.Memo) (*Future, error) {
	s := m.CreateSymbol()
	f := &Future{
		m:     m,
		value: symbol.K(s, 0),
		guard: symbol.K(s, 1),
	}
	if err := m.Put(f.guard, transferable.Nil{}); err != nil {
		return nil, err
	}
	return f, nil
}

// BindFuture attaches to a future created elsewhere, by its value key's
// symbol.
func BindFuture(m *core.Memo, s symbol.Symbol) *Future {
	return &Future{m: m, value: symbol.K(s, 0), guard: symbol.K(s, 1)}
}

// Name returns the future's symbol, shareable with other processes.
func (f *Future) Name() symbol.Symbol { return f.value.S }

// Key returns the value folder's key (for use with put_delayed triggers).
func (f *Future) Key() symbol.Key { return f.value }

// Resolve assigns the value. A second Resolve fails.
func (f *Future) Resolve(v transferable.Value) error {
	if _, ok, err := f.m.GetSkip(f.guard); err != nil {
		return err
	} else if !ok {
		return ErrAlreadyResolved
	}
	return f.m.Put(f.value, v)
}

// Wait blocks until the future is resolved and returns the value without
// consuming it ("the consumer only being delayed if it attempts to fetch
// from a variable before it has been assigned").
func (f *Future) Wait() (transferable.Value, error) { return f.m.GetCopy(f.value) }

// WaitCancel is Wait with cancellation.
func (f *Future) WaitCancel(cancel <-chan struct{}) (transferable.Value, error) {
	return f.m.GetCopyCancel(f.value, cancel)
}

// Take consumes the value; the folder vanishes.
func (f *Future) Take() (transferable.Value, error) { return f.m.Get(f.value) }

// Poll reports the value if already resolved, without blocking or consuming.
func (f *Future) Poll() (transferable.Value, bool, error) {
	v, ok, err := f.m.GetSkip(f.value)
	if err != nil || !ok {
		return nil, false, err
	}
	// Non-destructive poll: put the value back.
	if err := f.m.Put(f.value, v); err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// AndThen arranges for task to drop into jobJar when the future resolves —
// "the consumer can delay a memo for a job jar in the future's folder that
// will trigger the desired computation when the data becomes available"
// (§6.2.5). Note the trigger consumes nothing: the value stays readable.
func (f *Future) AndThen(jobJar symbol.Key, task transferable.Value) error {
	return f.m.PutDelayed(f.value, jobJar, task)
}

// IStructure is an incremental structure: a collection of futures invented
// for dataflow (§6.2.5). Elements are write-once; reads of unwritten
// elements block until the producer assigns them.
type IStructure struct {
	m    *core.Memo
	name symbol.Symbol
	n    uint32
}

// NewIStructure creates an I-structure with n elements. Creation deposits
// one write token per element, so construction is O(n) puts — the cost of
// enforcing single assignment.
func NewIStructure(m *core.Memo, n uint32) (*IStructure, error) {
	is := &IStructure{m: m, name: m.CreateSymbol(), n: n}
	for i := uint32(0); i < n; i++ {
		if err := m.Put(is.guardKey(i), transferable.Nil{}); err != nil {
			return nil, err
		}
	}
	return is, nil
}

// BindIStructure attaches to an I-structure created elsewhere.
func BindIStructure(m *core.Memo, name symbol.Symbol, n uint32) *IStructure {
	return &IStructure{m: m, name: name, n: n}
}

// Name returns the structure's symbol.
func (is *IStructure) Name() symbol.Symbol { return is.name }

// Len returns the element count.
func (is *IStructure) Len() uint32 { return is.n }

func (is *IStructure) valueKey(i uint32) symbol.Key { return symbol.K(is.name, i, 0) }
func (is *IStructure) guardKey(i uint32) symbol.Key { return symbol.K(is.name, i, 1) }

func (is *IStructure) check(i uint32) error {
	if i >= is.n {
		return fmt.Errorf("collect: i-structure index %d out of bounds [0,%d)", i, is.n)
	}
	return nil
}

// Set assigns element i exactly once; a second Set fails with
// ErrAlreadyResolved.
func (is *IStructure) Set(i uint32, v transferable.Value) error {
	if err := is.check(i); err != nil {
		return err
	}
	if _, ok, err := is.m.GetSkip(is.guardKey(i)); err != nil {
		return err
	} else if !ok {
		return ErrAlreadyResolved
	}
	return is.m.Put(is.valueKey(i), v)
}

// Get reads element i, blocking until it has been assigned. The value is
// not consumed: any number of readers see it.
func (is *IStructure) Get(i uint32) (transferable.Value, error) {
	if err := is.check(i); err != nil {
		return nil, err
	}
	return is.m.GetCopy(is.valueKey(i))
}

// GetCancel is Get with cancellation.
func (is *IStructure) GetCancel(i uint32, cancel <-chan struct{}) (transferable.Value, error) {
	if err := is.check(i); err != nil {
		return nil, err
	}
	return is.m.GetCopyCancel(is.valueKey(i), cancel)
}

// AndThen triggers task into jobJar when element i is assigned (§6.3.3).
func (is *IStructure) AndThen(i uint32, jobJar symbol.Key, task transferable.Value) error {
	if err := is.check(i); err != nil {
		return err
	}
	return is.m.PutDelayed(is.valueKey(i), jobJar, task)
}

// Trigger is the bare §6.3.3 dataflow helper: when a memo arrives in
// operand, drop operation into jobJar.
func Trigger(m *core.Memo, operand, jobJar symbol.Key, operation transferable.Value) error {
	return m.PutDelayed(operand, jobJar, operation)
}
