package collect_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/transferable"
)

func TestOrderedQueueFIFO(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q, err := collect.NewOrderedQueue(m)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := q.Enqueue(transferable.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if l, err := q.Len(); err != nil || l != n {
		t.Fatalf("Len = %d, %v", l, err)
	}
	for i := 0; i < n; i++ {
		v, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := transferable.AsInt(v); got != int64(i) {
			t.Fatalf("element %d: got %d (order broken)", i, got)
		}
	}
	if _, ok, err := q.TryDequeue(); err != nil || ok {
		t.Fatalf("drained queue yielded element: %v %v", ok, err)
	}
}

func TestOrderedQueueContrastWithUnordered(t *testing.T) {
	// The same insertion into an unordered queue does NOT come back FIFO
	// (that's the folder default); the ordered queue exists precisely to
	// add the guarantee.
	c := boot(t)
	m := memoOn(t, c, "a")
	uq := collect.NewQueue(m)
	const n = 64
	for i := 0; i < n; i++ {
		uq.Enqueue(transferable.Int64(int64(i)))
	}
	fifo := true
	for i := 0; i < n; i++ {
		v, err := uq.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := transferable.AsInt(v); got != int64(i) {
			fifo = false
		}
	}
	if fifo {
		t.Fatal("unordered queue accidentally FIFO for 64 elements; shuffling broken")
	}
}

func TestOrderedQueueBlocksUntilEnqueue(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q, err := collect.NewOrderedQueue(m)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int64, 1)
	go func() {
		v, err := q.Dequeue()
		if err == nil {
			n, _ := transferable.AsInt(v)
			got <- n
		}
	}()
	select {
	case <-got:
		t.Fatal("Dequeue returned on empty queue")
	case <-time.After(30 * time.Millisecond):
	}
	if err := q.Enqueue(transferable.Int64(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 7 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dequeue never woke")
	}
}

func TestOrderedQueueCancelRestoresCursor(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q, err := collect.NewOrderedQueue(m)
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := q.DequeueCancel(cancel)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel ignored")
	}
	// The queue must still work after the canceled consumer.
	q.Enqueue(transferable.Int64(1))
	if v, err := q.Dequeue(); err != nil {
		t.Fatal(err)
	} else if n, _ := transferable.AsInt(v); n != 1 {
		t.Fatalf("got %d", n)
	}
}

func TestOrderedQueueMultiProducerMultiConsumer(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q, err := collect.NewOrderedQueue(m)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 25
	const total = producers * perProducer
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		host := "a"
		if p%2 == 1 {
			host = "b"
		}
		qp := collect.BindOrderedQueue(memoOn(t, c, host), q.Name())
		wg.Add(1)
		go func(p int, qp *collect.OrderedQueue) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := qp.Enqueue(transferable.Int64(int64(p*perProducer + i))); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p, qp)
	}
	// Two consumers drain concurrently; union must be exact, no dupes.
	seen := make(chan int64, total)
	for cns := 0; cns < 2; cns++ {
		qc := collect.BindOrderedQueue(memoOn(t, c, "b"), q.Name())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/2; i++ {
				v, err := qc.Dequeue()
				if err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
				n, _ := transferable.AsInt(v)
				seen <- n
			}
		}()
	}
	wg.Wait()
	close(seen)
	got := map[int64]bool{}
	for n := range seen {
		if got[n] {
			t.Fatalf("element %d delivered twice", n)
		}
		got[n] = true
	}
	if len(got) != total {
		t.Fatalf("delivered %d elements want %d", len(got), total)
	}
	// Per-producer relative order must be preserved even with concurrent
	// consumers? No — with two consumers, global dequeue order interleaves;
	// the FIFO guarantee is on the queue sequence itself, which the dense
	// cursor enforces. Exactness above is the invariant.
}

func TestOrderedQueuePerProducerOrderSingleConsumer(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q, err := collect.NewOrderedQueue(m)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 3
	const perProducer = 20
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		qp := collect.BindOrderedQueue(memoOn(t, c, "b"), q.Name())
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				qp.Enqueue(transferable.NewList(
					transferable.Int64(int64(p)), transferable.Int64(int64(i))))
			}
		}(p)
	}
	wg.Wait()
	lastSeen := map[int64]int64{0: -1, 1: -1, 2: -1}
	for i := 0; i < producers*perProducer; i++ {
		v, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		l := v.(*transferable.List)
		p, _ := transferable.AsInt(l.At(0))
		seq, _ := transferable.AsInt(l.At(1))
		if seq <= lastSeen[p] {
			t.Fatalf("producer %d: element %d after %d (per-producer order broken)", p, seq, lastSeen[p])
		}
		lastSeen[p] = seq
	}
}
