package collect

import (
	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// OrderedQueue is the FIFO counterpart of the unordered folder queue — the
// paper's §2 primitive list includes both. Order is imposed on top of
// unordered folders with sequence numbers: element n lives in the folder
// {S, [n]}, a write-sequencer record assigns producer slots, and a read-
// cursor record serializes consumers. Both records are shared records in
// the §6.3.1 sense: holding one implicitly locks the corresponding end of
// the queue, so producers serialize among themselves and consumers among
// themselves, while the two ends proceed independently.
type OrderedQueue struct {
	m    *core.Memo
	name symbol.Symbol
}

// Index-vector tags for the queue's folders.
const (
	oqElem  = 0 // {S, [oqElem, n]} holds element n
	oqWrite = 1 // {S, [oqWrite]} holds the next write sequence number
	oqRead  = 2 // {S, [oqRead]} holds the next read sequence number
)

// NewOrderedQueue creates an empty FIFO queue.
func NewOrderedQueue(m *core.Memo) (*OrderedQueue, error) {
	q := &OrderedQueue{m: m, name: m.CreateSymbol()}
	if err := m.Put(q.writeKey(), transferable.Uint64(0)); err != nil {
		return nil, err
	}
	if err := m.Put(q.readKey(), transferable.Uint64(0)); err != nil {
		return nil, err
	}
	return q, nil
}

// BindOrderedQueue attaches to a queue created elsewhere.
func BindOrderedQueue(m *core.Memo, name symbol.Symbol) *OrderedQueue {
	return &OrderedQueue{m: m, name: name}
}

// Name returns the queue's symbol for sharing with other processes.
func (q *OrderedQueue) Name() symbol.Symbol { return q.name }

func (q *OrderedQueue) elemKey(n uint64) symbol.Key {
	return symbol.K(q.name, oqElem, uint32(n>>32), uint32(n))
}
func (q *OrderedQueue) writeKey() symbol.Key { return symbol.K(q.name, oqWrite) }
func (q *OrderedQueue) readKey() symbol.Key  { return symbol.K(q.name, oqRead) }

func asSeq(v transferable.Value) uint64 {
	if u, ok := v.(transferable.Uint64); ok {
		return uint64(u)
	}
	n, _ := transferable.AsInt(v)
	return uint64(n)
}

// Enqueue appends v. Producers serialize on the write-sequencer record; the
// element is deposited before the sequencer is released, so sequence
// numbers are dense and element n is visible before slot n+1 is assigned.
func (q *OrderedQueue) Enqueue(v transferable.Value) error {
	sv, err := q.m.Get(q.writeKey()) // lock the write end
	if err != nil {
		return err
	}
	seq := asSeq(sv)
	if err := q.m.Put(q.elemKey(seq), v); err != nil {
		// Restore the sequencer so the queue is not left locked.
		//memolint:ignore errgate best-effort restore of the write sequencer on an already-failing path; the deposit error below is what the caller acts on
		_ = q.m.Put(q.writeKey(), transferable.Uint64(seq))
		return err
	}
	return q.m.Put(q.writeKey(), transferable.Uint64(seq+1))
}

// Dequeue removes and returns the oldest element, blocking while the queue
// is empty. Consumers serialize on the read-cursor record.
func (q *OrderedQueue) Dequeue() (transferable.Value, error) {
	return q.DequeueCancel(nil)
}

// DequeueCancel is Dequeue with cancellation; on cancel the cursor is
// restored so other consumers proceed.
func (q *OrderedQueue) DequeueCancel(cancel <-chan struct{}) (transferable.Value, error) {
	cv, err := q.m.GetCancel(q.readKey(), cancel) // lock the read end
	if err != nil {
		return nil, err
	}
	cursor := asSeq(cv)
	v, err := q.m.GetCancel(q.elemKey(cursor), cancel)
	if err != nil {
		//memolint:ignore errgate best-effort restore of the read cursor on an already-failing path; the extraction error below is what the caller acts on
		_ = q.m.Put(q.readKey(), transferable.Uint64(cursor))
		return nil, err
	}
	if err := q.m.Put(q.readKey(), transferable.Uint64(cursor+1)); err != nil {
		return nil, err
	}
	return v, nil
}

// TryDequeue removes the oldest element if one is present.
func (q *OrderedQueue) TryDequeue() (transferable.Value, bool, error) {
	cv, err := q.m.Get(q.readKey())
	if err != nil {
		return nil, false, err
	}
	cursor := asSeq(cv)
	v, ok, err := q.m.GetSkip(q.elemKey(cursor))
	if err != nil || !ok {
		if perr := q.m.Put(q.readKey(), transferable.Uint64(cursor)); perr != nil && err == nil {
			err = perr
		}
		return nil, false, err
	}
	if err := q.m.Put(q.readKey(), transferable.Uint64(cursor+1)); err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Len reports the number of elements currently enqueued. It momentarily
// holds both end records, so it is consistent but not cheap.
func (q *OrderedQueue) Len() (int, error) {
	wv, err := q.m.Get(q.writeKey())
	if err != nil {
		return 0, err
	}
	w := asSeq(wv)
	rv, err := q.m.Get(q.readKey())
	if err != nil {
		//memolint:ignore errgate best-effort restore of the write sequencer on an already-failing path; the read-end error below is what the caller acts on
		_ = q.m.Put(q.writeKey(), transferable.Uint64(w))
		return 0, err
	}
	r := asSeq(rv)
	if err := q.m.Put(q.readKey(), transferable.Uint64(r)); err != nil {
		return 0, err
	}
	if err := q.m.Put(q.writeKey(), transferable.Uint64(w)); err != nil {
		return 0, err
	}
	return int(w - r), nil
}
