// Package collect implements the shared data structures and synchronization
// mechanisms of paper §6.2 and §6.3, built purely from folders and memos via
// the core Memo API — exactly as the paper constructs them:
//
//   - NamedObject: a folder holding at most one memo stands in for a heap
//     object; folder names replace pointers (§6.2.1).
//   - Array: element a[i,j] lives in the folder keyed {S:a, X:[i,j]}
//     (§6.2.2).
//   - Queue: a folder is an unordered queue (§6.2.3).
//   - JobJar: an unordered queue of tasks, with per-process jars and a
//     common jar drained through get_alt (§6.2.4).
//   - Future and IStructure: assign-once variables and collections of them
//     (§6.2.5), with dataflow triggering via put_delayed.
//   - Lock: shared records are implicitly locked by extraction (§6.3.1).
//   - Semaphore: a lock initialized with N memos (§6.3.2).
//   - Barrier: built from a shared counter record plus release tokens.
//   - Trigger: the §6.3.3 dataflow helper.
package collect

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Errors.
var (
	// ErrAlreadyResolved reports a second write to a future/I-structure cell.
	ErrAlreadyResolved = errors.New("collect: future already resolved")
)

// NamedObject is a dynamically allocated shared object: a folder that holds
// at most one memo. "Instead of pointers to objects, we use folder names."
type NamedObject struct {
	m   *core.Memo
	key symbol.Key
}

// NewNamedObject allocates a fresh anonymous object holding initial.
func NewNamedObject(m *core.Memo, initial transferable.Value) (*NamedObject, error) {
	o := &NamedObject{m: m, key: symbol.K(m.CreateSymbol())}
	if err := m.Put(o.key, initial); err != nil {
		return nil, err
	}
	return o, nil
}

// BindNamedObject attaches to an existing object by its folder key (the
// "pointer" another process passed in a memo).
func BindNamedObject(m *core.Memo, key symbol.Key) *NamedObject {
	return &NamedObject{m: m, key: key}
}

// Key returns the object's folder name — the pointer to pass around.
func (o *NamedObject) Key() symbol.Key { return o.key }

// Read returns the current value without taking it (blocking).
func (o *NamedObject) Read() (transferable.Value, error) {
	return o.m.GetCopy(o.key)
}

// Take removes the value, implicitly locking the object (§6.3.1).
func (o *NamedObject) Take() (transferable.Value, error) {
	return o.m.Get(o.key)
}

// Put stores a value back, releasing the implicit lock.
func (o *NamedObject) Put(v transferable.Value) error {
	return o.m.Put(o.key, v)
}

// Update applies f atomically with respect to other Update/Take callers.
func (o *NamedObject) Update(f func(transferable.Value) (transferable.Value, error)) error {
	v, err := o.Take()
	if err != nil {
		return err
	}
	nv, err := f(v)
	if err != nil {
		// Restore the record so the object is not left locked.
		if perr := o.Put(v); perr != nil {
			return fmt.Errorf("collect: update failed (%v) and restore failed: %w", err, perr)
		}
		return err
	}
	return o.Put(nv)
}

// Array is a shared array of objects: element [i,j,...] is the folder
// {S: name, X: [i,j,...]} (§6.2.2's FOLDER_NAME construction).
type Array struct {
	m    *core.Memo
	name symbol.Symbol
	dims []uint32
}

// NewArray creates an array abstraction over a fresh symbol with the given
// dimensions (bounds are checked on access).
func NewArray(m *core.Memo, dims ...uint32) *Array {
	return &Array{m: m, name: m.CreateSymbol(), dims: dims}
}

// BindArray attaches to an array created by another process.
func BindArray(m *core.Memo, name symbol.Symbol, dims ...uint32) *Array {
	return &Array{m: m, name: name, dims: dims}
}

// Name returns the array's symbol, shareable with other processes.
func (a *Array) Name() symbol.Symbol { return a.name }

// ElementKey computes the folder key of an element.
func (a *Array) ElementKey(idx ...uint32) (symbol.Key, error) {
	if len(idx) != len(a.dims) {
		return symbol.Key{}, fmt.Errorf("collect: array is %d-dimensional, got %d indices", len(a.dims), len(idx))
	}
	for d, i := range idx {
		if i >= a.dims[d] {
			return symbol.Key{}, fmt.Errorf("collect: index %d out of bounds [0,%d)", i, a.dims[d])
		}
	}
	return symbol.K(a.name, idx...), nil
}

// Set stores an element (replacing any existing value: it takes the old one
// first if present, keeping at most one memo per element folder).
func (a *Array) Set(v transferable.Value, idx ...uint32) error {
	k, err := a.ElementKey(idx...)
	if err != nil {
		return err
	}
	// Drop any previous value: element folders hold at most one memo.
	if _, _, err := a.m.GetSkip(k); err != nil {
		return err
	}
	return a.m.Put(k, v)
}

// Get reads an element without consuming it, blocking until it is set.
// This is also the I-structure read behaviour: reads of unwritten elements
// wait for the producer.
func (a *Array) Get(idx ...uint32) (transferable.Value, error) {
	k, err := a.ElementKey(idx...)
	if err != nil {
		return nil, err
	}
	return a.m.GetCopy(k)
}

// Take removes an element (implicit lock; put it back with Set).
func (a *Array) Take(idx ...uint32) (transferable.Value, error) {
	k, err := a.ElementKey(idx...)
	if err != nil {
		return nil, err
	}
	return a.m.Get(k)
}

// TryGet polls an element without blocking or consuming. Note: implemented
// as a non-destructive poll via GetSkip+Put, so a concurrent Take can race;
// use Get for synchronization.
func (a *Array) TryGet(idx ...uint32) (transferable.Value, bool, error) {
	k, err := a.ElementKey(idx...)
	if err != nil {
		return nil, false, err
	}
	v, ok, err := a.m.GetSkip(k)
	if err != nil || !ok {
		return nil, false, err
	}
	if err := a.m.Put(k, v); err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Queue is an unordered queue: processes "communicate simply by passing
// memos through a folder" (§6.2.3).
type Queue struct {
	m   *core.Memo
	key symbol.Key
}

// NewQueue creates a fresh anonymous queue.
func NewQueue(m *core.Memo) *Queue {
	return &Queue{m: m, key: symbol.K(m.CreateSymbol())}
}

// NamedQueue attaches to a well-known queue by name.
func NamedQueue(m *core.Memo, name string) *Queue {
	return &Queue{m: m, key: m.NamedKey(name)}
}

// BindQueue attaches to a queue by key.
func BindQueue(m *core.Memo, key symbol.Key) *Queue {
	return &Queue{m: m, key: key}
}

// Key returns the queue's folder name.
func (q *Queue) Key() symbol.Key { return q.key }

// Enqueue deposits a value.
func (q *Queue) Enqueue(v transferable.Value) error { return q.m.Put(q.key, v) }

// Dequeue removes some value, blocking while empty. No order is promised.
func (q *Queue) Dequeue() (transferable.Value, error) { return q.m.Get(q.key) }

// DequeueCancel is Dequeue with cancellation.
func (q *Queue) DequeueCancel(cancel <-chan struct{}) (transferable.Value, error) {
	return q.m.GetCancel(q.key, cancel)
}

// TryDequeue removes a value if present.
func (q *Queue) TryDequeue() (transferable.Value, bool, error) { return q.m.GetSkip(q.key) }
