package collect

import (
	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// JobJar is the §6.2.4 work-distribution structure: an unordered queue whose
// memos are tasks. "Whenever a process creates more work to do, it drops
// memos in the job jar." A jar may be paired with per-process jars for work
// that must run on a specific process (e.g. file I/O); GetWork then drains
// either with get_alt.
type JobJar struct {
	m      *core.Memo
	common symbol.Key
	local  symbol.Key // zero key when the process has no private jar
}

// NewJobJar opens the application's common job jar under a well-known name.
func NewJobJar(m *core.Memo, name string) *JobJar {
	return &JobJar{m: m, common: m.NamedKey(name)}
}

// WithLocal attaches this process's private jar (named by process id).
func (j *JobJar) WithLocal(procID uint32) *JobJar {
	return &JobJar{
		m:      j.m,
		common: j.common,
		local:  symbol.K(j.common.S, append(append([]uint32{}, j.common.X...), procID)...),
	}
}

// CommonKey returns the common jar's folder key.
func (j *JobJar) CommonKey() symbol.Key { return j.common }

// LocalKey returns this process's private jar key (ok=false if none).
func (j *JobJar) LocalKey() (symbol.Key, bool) {
	return j.local, j.local.S != symbol.None
}

// Add drops a task into the common jar.
func (j *JobJar) Add(task transferable.Value) error { return j.m.Put(j.common, task) }

// AddLocal drops a task into a specific process's private jar.
func (j *JobJar) AddLocal(procID uint32, task transferable.Value) error {
	k := symbol.K(j.common.S, append(append([]uint32{}, j.common.X...), procID)...)
	return j.m.Put(k, task)
}

// GetWork takes a task from the private jar or the common jar, whichever
// has one, blocking until some task is available (get_alt per the paper).
func (j *JobJar) GetWork() (transferable.Value, error) {
	return j.GetWorkCancel(nil)
}

// GetWorkCancel is GetWork with cancellation.
func (j *JobJar) GetWorkCancel(cancel <-chan struct{}) (transferable.Value, error) {
	if j.local.S == symbol.None {
		return j.m.GetCancel(j.common, cancel)
	}
	_, v, err := j.m.GetAltCancel(cancel, j.local, j.common)
	return v, err
}

// TryGetWork polls both jars without blocking (get_alt_skip).
func (j *JobJar) TryGetWork() (transferable.Value, bool, error) {
	if j.local.S == symbol.None {
		return j.m.GetSkip(j.common)
	}
	_, v, ok, err := j.m.GetAltSkip(j.local, j.common)
	return v, ok, err
}
