package collect

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Lock is the §6.3.1 mechanism: a folder holding one token memo. Lock takes
// the token (blocking competitors), Unlock puts it back. Shared records get
// the same effect implicitly by extracting the record itself.
type Lock struct {
	m   *core.Memo
	key symbol.Key
}

// NewLock creates an unlocked lock.
func NewLock(m *core.Memo) (*Lock, error) {
	l := &Lock{m: m, key: symbol.K(m.CreateSymbol())}
	if err := m.Put(l.key, transferable.Nil{}); err != nil {
		return nil, err
	}
	return l, nil
}

// NamedLock attaches to (or implicitly creates) a well-known lock. Exactly
// one process must Init it.
func NamedLock(m *core.Memo, name string) *Lock {
	return &Lock{m: m, key: m.NamedKey("lock:" + name)}
}

// Init deposits the token; call once per lock.
func (l *Lock) Init() error { return l.m.Put(l.key, transferable.Nil{}) }

// Key returns the lock's folder key.
func (l *Lock) Key() symbol.Key { return l.key }

// Lock acquires the token, blocking until available.
func (l *Lock) Lock() error {
	_, err := l.m.Get(l.key)
	return err
}

// TryLock acquires the token without blocking.
func (l *Lock) TryLock() (bool, error) {
	_, ok, err := l.m.GetSkip(l.key)
	return ok, err
}

// Unlock returns the token.
func (l *Lock) Unlock() error { return l.m.Put(l.key, transferable.Nil{}) }

// Semaphore is the §6.3.2 counting semaphore: "identical to a lock, except
// that the semaphore is initialized with as many memos as needed".
type Semaphore struct {
	m   *core.Memo
	key symbol.Key
}

// NewSemaphore creates a semaphore with n permits.
func NewSemaphore(m *core.Memo, n int) (*Semaphore, error) {
	if n < 0 {
		return nil, fmt.Errorf("collect: negative semaphore count %d", n)
	}
	s := &Semaphore{m: m, key: symbol.K(m.CreateSymbol())}
	for i := 0; i < n; i++ {
		if err := m.Put(s.key, transferable.Nil{}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// BindSemaphore attaches to a semaphore created elsewhere.
func BindSemaphore(m *core.Memo, key symbol.Key) *Semaphore {
	return &Semaphore{m: m, key: key}
}

// Key returns the semaphore's folder key.
func (s *Semaphore) Key() symbol.Key { return s.key }

// P (wait) takes a permit.
func (s *Semaphore) P() error {
	_, err := s.m.Get(s.key)
	return err
}

// TryP takes a permit without blocking.
func (s *Semaphore) TryP() (bool, error) {
	_, ok, err := s.m.GetSkip(s.key)
	return ok, err
}

// V (signal) returns a permit.
func (s *Semaphore) V() error { return s.m.Put(s.key, transferable.Nil{}) }

// Barrier synchronizes n processes. Arrival updates a shared counter record
// (implicitly locked, §6.3.1); the last arrival refills the release folder
// with n tokens for the next generation. Generations are tracked in the
// release key's index vector so a fast process cannot lap a slow one.
type Barrier struct {
	m    *core.Memo
	name symbol.Symbol
	n    int64
}

// NewBarrier creates a barrier for n parties and returns its symbol for
// sharing.
func NewBarrier(m *core.Memo, n int) (*Barrier, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collect: barrier needs n >= 1, got %d", n)
	}
	b := &Barrier{m: m, name: m.CreateSymbol(), n: int64(n)}
	// Counter record: [count, generation].
	if err := m.Put(b.counterKey(), transferable.NewList(transferable.Int64(0), transferable.Int64(0))); err != nil {
		return nil, err
	}
	return b, nil
}

// BindBarrier attaches to a barrier created elsewhere.
func BindBarrier(m *core.Memo, name symbol.Symbol, n int) *Barrier {
	return &Barrier{m: m, name: name, n: int64(n)}
}

// Name returns the barrier's symbol.
func (b *Barrier) Name() symbol.Symbol { return b.name }

func (b *Barrier) counterKey() symbol.Key { return symbol.K(b.name, 0) }
func (b *Barrier) releaseKey(gen int64) symbol.Key {
	return symbol.K(b.name, 1, uint32(gen%1024)+1)
}

// Await blocks until all n parties have arrived.
func (b *Barrier) Await() error { return b.AwaitCancel(nil) }

// AwaitCancel is Await with cancellation. Canceling mid-round may strand
// the round; cancellation is for shutdown, not control flow.
func (b *Barrier) AwaitCancel(cancel <-chan struct{}) error {
	// Take the counter record (implicit lock).
	v, err := b.m.GetCancel(b.counterKey(), cancel)
	if err != nil {
		return err
	}
	rec, ok := v.(*transferable.List)
	if !ok || rec.Len() != 2 {
		return fmt.Errorf("collect: corrupt barrier record %v", v)
	}
	count, _ := transferable.AsInt(rec.At(0))
	gen, _ := transferable.AsInt(rec.At(1))
	count++
	if count == b.n {
		// Last arrival: open the barrier. Reset the counter for the next
		// generation, then release everyone (including ourselves).
		if err := b.m.Put(b.counterKey(), transferable.NewList(transferable.Int64(0), transferable.Int64(gen+1))); err != nil {
			return err
		}
		for i := int64(0); i < b.n; i++ {
			if err := b.m.Put(b.releaseKey(gen), transferable.Nil{}); err != nil {
				return err
			}
		}
	} else {
		if err := b.m.Put(b.counterKey(), transferable.NewList(transferable.Int64(count), transferable.Int64(gen))); err != nil {
			return err
		}
	}
	_, err = b.m.GetCancel(b.releaseKey(gen), cancel)
	return err
}
