package collect_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/transferable"
)

const adfText = `APP collecttest
HOSTS
a 4 sun4 1
b 4 sun4 1
FOLDERS
0-3 a
4-7 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

func boot(t testing.TB) *cluster.Cluster {
	t.Helper()
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func memoOn(t testing.TB, c *cluster.Cluster, host string) *core.Memo {
	t.Helper()
	m, err := c.NewMemo(host)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNamedObjectLifecycle(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	obj, err := collect.NewNamedObject(m, transferable.Int64(10))
	if err != nil {
		t.Fatal(err)
	}
	// Another process binds by key — the "pointer".
	other := memoOn(t, c, "b")
	bound := collect.BindNamedObject(other, obj.Key())
	v, err := bound.Read()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(v); n != 10 {
		t.Fatalf("read %v", v)
	}
	// Take locks; Put unlocks.
	taken, err := bound.Take()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(taken); n != 10 {
		t.Fatalf("take %v", taken)
	}
	if err := bound.Put(transferable.Int64(11)); err != nil {
		t.Fatal(err)
	}
	v, _ = obj.Read()
	if n, _ := transferable.AsInt(v); n != 11 {
		t.Fatalf("after put-back: %v", v)
	}
}

func TestNamedObjectUpdateAtomic(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	obj, err := collect.NewNamedObject(m, transferable.Int64(0))
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters = 6, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		host := "a"
		if w%2 == 0 {
			host = "b"
		}
		o := collect.BindNamedObject(memoOn(t, c, host), obj.Key())
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := o.Update(func(v transferable.Value) (transferable.Value, error) {
					n, _ := transferable.AsInt(v)
					return transferable.Int64(n + 1), nil
				})
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := obj.Read()
	if n, _ := transferable.AsInt(v); n != workers*iters {
		t.Fatalf("count = %d want %d", n, workers*iters)
	}
}

func TestNamedObjectUpdateErrorRestores(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	obj, _ := collect.NewNamedObject(m, transferable.Int64(5))
	boom := errors.New("boom")
	err := obj.Update(func(transferable.Value) (transferable.Value, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The object must not be left locked.
	v, err := obj.Read()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(v); n != 5 {
		t.Fatalf("value after failed update: %v", v)
	}
}

func TestArraySetGet(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	a := collect.NewArray(m, 4, 4)
	for i := uint32(0); i < 4; i++ {
		for j := uint32(0); j < 4; j++ {
			if err := a.Set(transferable.Int64(int64(i*10+j)), i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Bound from another process by name.
	b := collect.BindArray(memoOn(t, c, "b"), a.Name(), 4, 4)
	v, err := b.Get(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := transferable.AsInt(v); n != 23 {
		t.Fatalf("a[2,3] = %v", v)
	}
}

func TestArraySetReplaces(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	a := collect.NewArray(m, 2)
	a.Set(transferable.Int64(1), 0)
	a.Set(transferable.Int64(2), 0)
	v, _ := a.Get(0)
	if n, _ := transferable.AsInt(v); n != 2 {
		t.Fatalf("a[0] = %v", v)
	}
	// Take leaves the folder empty; TryGet sees nothing.
	if _, err := a.Take(0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.TryGet(0); ok {
		t.Fatal("TryGet found a taken element")
	}
}

func TestArrayBounds(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	a := collect.NewArray(m, 2, 3)
	if err := a.Set(transferable.Int64(1), 2, 0); err == nil {
		t.Fatal("out-of-bounds row accepted")
	}
	if err := a.Set(transferable.Int64(1), 0); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := a.Get(0, 3); err == nil {
		t.Fatal("out-of-bounds column accepted")
	}
}

func TestArrayGetBlocksUntilSet(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	a := collect.NewArray(m, 2)
	got := make(chan transferable.Value, 1)
	go func() {
		v, err := a.Get(1)
		if err == nil {
			got <- v
		}
	}()
	select {
	case <-got:
		t.Fatal("Get returned before Set")
	case <-time.After(30 * time.Millisecond):
	}
	a.Set(transferable.String("late"), 1)
	select {
	case v := <-got:
		if s, _ := transferable.AsString(v); s != "late" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("array read never woke")
	}
}

func TestQueueUnordered(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	q := collect.NewQueue(m)
	const n = 32
	for i := 0; i < n; i++ {
		if err := q.Enqueue(transferable.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int64]bool)
	for i := 0; i < n; i++ {
		v, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		x, _ := transferable.AsInt(v)
		if seen[x] {
			t.Fatalf("value %d dequeued twice", x)
		}
		seen[x] = true
	}
	if _, ok, _ := q.TryDequeue(); ok {
		t.Fatal("queue not empty after draining")
	}
}

func TestNamedQueueSharedAcrossProcesses(t *testing.T) {
	c := boot(t)
	qa := collect.NamedQueue(memoOn(t, c, "a"), "pipeline")
	qb := collect.NamedQueue(memoOn(t, c, "b"), "pipeline")
	qa.Enqueue(transferable.String("from-a"))
	v, err := qb.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "from-a" {
		t.Fatalf("got %v", v)
	}
}

func TestJobJarCommonOnly(t *testing.T) {
	c := boot(t)
	j := collect.NewJobJar(memoOn(t, c, "a"), "jobs")
	if _, ok, _ := j.TryGetWork(); ok {
		t.Fatal("empty jar yielded work")
	}
	j.Add(transferable.String("task1"))
	v, err := j.GetWork()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "task1" {
		t.Fatalf("got %v", v)
	}
}

func TestJobJarLocalPreference(t *testing.T) {
	// Work in a process's private jar must be retrievable via GetWork, and
	// only by the owner (other processes don't see private jars).
	c := boot(t)
	owner := collect.NewJobJar(memoOn(t, c, "a"), "jobs2").WithLocal(7)
	other := collect.NewJobJar(memoOn(t, c, "b"), "jobs2").WithLocal(8)

	base := collect.NewJobJar(memoOn(t, c, "a"), "jobs2")
	if err := base.AddLocal(7, transferable.String("io-task")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := other.TryGetWork(); ok {
		t.Fatal("process 8 stole process 7's private task")
	}
	v, err := owner.GetWork()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "io-task" {
		t.Fatalf("got %v", v)
	}
}

func TestJobJarDrainsBothJars(t *testing.T) {
	c := boot(t)
	j := collect.NewJobJar(memoOn(t, c, "a"), "jobs3").WithLocal(1)
	j.Add(transferable.String("common"))
	j.AddLocal(1, transferable.String("private"))
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		v, err := j.GetWork()
		if err != nil {
			t.Fatal(err)
		}
		s, _ := transferable.AsString(v)
		got[s] = true
	}
	if !got["common"] || !got["private"] {
		t.Fatalf("drained %v", got)
	}
}

func TestFutureResolveWaitTake(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	f, err := collect.NewFuture(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := f.Poll(); ok {
		t.Fatal("unresolved future polled a value")
	}
	consumer := collect.BindFuture(memoOn(t, c, "b"), f.Name())
	got := make(chan transferable.Value, 1)
	go func() {
		v, err := consumer.Wait()
		if err == nil {
			got <- v
		}
	}()
	select {
	case <-got:
		t.Fatal("Wait returned before Resolve")
	case <-time.After(30 * time.Millisecond):
	}
	if err := f.Resolve(transferable.Int64(99)); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if n, _ := transferable.AsInt(v); n != 99 {
			t.Fatalf("got %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("future consumer never woke")
	}
	// Multiple Waits see the value; Take consumes it.
	if v, err := f.Wait(); err != nil {
		t.Fatal(err)
	} else if n, _ := transferable.AsInt(v); n != 99 {
		t.Fatalf("second wait: %v", v)
	}
	if _, err := f.Take(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureDoubleResolve(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	f, _ := collect.NewFuture(m)
	if err := f.Resolve(transferable.Int64(1)); err != nil {
		t.Fatal(err)
	}
	err := f.Resolve(transferable.Int64(2))
	if !errors.Is(err, collect.ErrAlreadyResolved) {
		t.Fatalf("second resolve: %v", err)
	}
	// Racing resolvers: exactly one wins.
	f2, _ := collect.NewFuture(m)
	var wins, fails int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := f2.Resolve(transferable.Int64(int64(i)))
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				wins++
			} else if errors.Is(err, collect.ErrAlreadyResolved) {
				fails++
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 || fails != 7 {
		t.Fatalf("wins=%d fails=%d", wins, fails)
	}
}

func TestFutureAndThenTrigger(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	f, _ := collect.NewFuture(m)
	jar := collect.NewJobJar(m, "trigger-jar")
	if err := f.AndThen(jar.CommonKey(), transferable.String("continue")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := jar.TryGetWork(); ok {
		t.Fatal("trigger fired before resolve")
	}
	f.Resolve(transferable.Int64(1))
	v, err := jar.GetWork()
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "continue" {
		t.Fatalf("got %v", v)
	}
	// The future's value must still be there (trigger consumed nothing).
	if v, err := f.Wait(); err != nil {
		t.Fatal(err)
	} else if n, _ := transferable.AsInt(v); n != 1 {
		t.Fatalf("future value: %v", v)
	}
}

func TestIStructureWriteOnceBlockingRead(t *testing.T) {
	c := boot(t)
	producer := memoOn(t, c, "a")
	is, err := collect.NewIStructure(producer, 8)
	if err != nil {
		t.Fatal(err)
	}
	reader := collect.BindIStructure(memoOn(t, c, "b"), is.Name(), 8)
	got := make(chan int64, 1)
	go func() {
		v, err := reader.Get(5)
		if err == nil {
			n, _ := transferable.AsInt(v)
			got <- n
		}
	}()
	select {
	case <-got:
		t.Fatal("read of unwritten element returned")
	case <-time.After(30 * time.Millisecond):
	}
	if err := is.Set(5, transferable.Int64(55)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 55 {
			t.Fatalf("got %d", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("i-structure read never woke")
	}
	if err := is.Set(5, transferable.Int64(56)); !errors.Is(err, collect.ErrAlreadyResolved) {
		t.Fatalf("double set: %v", err)
	}
	if err := is.Set(8, transferable.Int64(1)); err == nil {
		t.Fatal("out-of-bounds set accepted")
	}
	if _, err := is.Get(9); err == nil {
		t.Fatal("out-of-bounds get accepted")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	l, err := collect.NewLock(m)
	if err != nil {
		t.Fatal(err)
	}
	var counter int
	const workers, iters = 6, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		host := "a"
		if w%2 == 0 {
			host = "b"
		}
		mm := memoOn(t, c, host)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ll := &lockAlias{m: mm, l: l}
			for i := 0; i < iters; i++ {
				if err := ll.lock(); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				counter++
				if err := ll.unlock(); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d want %d", counter, workers*iters)
	}
}

// lockAlias exercises cross-process locking through the raw API on the
// lock's key (processes share the folder, not the *Lock value).
type lockAlias struct {
	m *core.Memo
	l *collect.Lock
}

func (a *lockAlias) lock() error {
	_, err := a.m.Get(a.l.Key())
	return err
}
func (a *lockAlias) unlock() error {
	return a.m.Put(a.l.Key(), transferable.Nil{})
}

func TestTryLock(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	l, _ := collect.NewLock(m)
	ok, err := l.TryLock()
	if err != nil || !ok {
		t.Fatalf("TryLock on free lock: %v %v", ok, err)
	}
	ok, err = l.TryLock()
	if err != nil || ok {
		t.Fatalf("TryLock on held lock: %v %v", ok, err)
	}
	l.Unlock()
	if ok, _ := l.TryLock(); !ok {
		t.Fatal("TryLock after unlock failed")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	const permits = 3
	sem, err := collect.NewSemaphore(m, permits)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	cur, maxSeen := 0, 0
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		s := collect.BindSemaphore(memoOn(t, c, "b"), sem.Key())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.P(); err != nil {
				t.Errorf("P: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > maxSeen {
				maxSeen = cur
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			if err := s.V(); err != nil {
				t.Errorf("V: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxSeen > permits {
		t.Fatalf("%d concurrent holders exceeded %d permits", maxSeen, permits)
	}
	if _, err := collect.NewSemaphore(m, -1); err == nil {
		t.Fatal("negative semaphore accepted")
	}
}

func TestBarrierRounds(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	const parties = 4
	const rounds = 5
	b, err := collect.NewBarrier(m, parties)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	position := make([]int, parties)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		host := "a"
		if p%2 == 1 {
			host = "b"
		}
		bp := collect.BindBarrier(memoOn(t, c, host), b.Name(), parties)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				position[p] = r
				// No party may be more than one round ahead of another
				// when passing a barrier.
				for _, other := range position {
					if other < r-1 || other > r+1 {
						t.Errorf("party %d at round %d saw other at %d", p, r, other)
					}
				}
				mu.Unlock()
				if err := bp.Await(); err != nil {
					t.Errorf("await: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestBarrierValidation(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	if _, err := collect.NewBarrier(m, 0); err == nil {
		t.Fatal("0-party barrier accepted")
	}
}

func TestTriggerHelper(t *testing.T) {
	c := boot(t)
	m := memoOn(t, c, "a")
	operand := m.NamedKey("op")
	jar := m.NamedKey("jar")
	if err := collect.Trigger(m, operand, jar, transferable.String("fire")); err != nil {
		t.Fatal(err)
	}
	m.Put(operand, transferable.Int64(1))
	v, err := m.Get(jar)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "fire" {
		t.Fatalf("got %v", v)
	}
}
