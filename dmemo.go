// Package repro is D-Memo: a reproduction of "Distributed Memo: A
// Heterogeneously Distributed and Parallel Software Development
// Environment" (O'Connell, Thiruvathukal, Christopher; ICPP 1994).
//
// D-Memo presents a network of heterogeneous machines as one shared
// directory of unordered queues: messages are memos, queues are folders,
// and any process on any host can deposit, examine, or extract memos from
// any folder. This package is the public facade; it re-exports the pieces a
// downstream application needs:
//
//   - Cluster / Boot: a simulated heterogeneous network built from an
//     Application Description File (ADF, paper §4.3).
//   - Memo: the application API (§6) — Put, PutDelayed, Get, GetCopy,
//     GetSkip, GetAlt, GetAltSkip, CreateSymbol.
//   - The collect subpackage's coordination structures (job jars, futures,
//     I-structures, locks, semaphores, barriers) accept Memo handles.
//
// Quickstart:
//
//	c, err := repro.BootADF(adfText, repro.Options{})
//	defer c.Shutdown()
//	m, err := c.NewMemo("hostname")
//	m.Put(m.NamedKey("greetings"), transferable.String("hi"))
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package repro

import (
	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// Re-exported core types. Aliases keep one set of method sets and let the
// examples and external callers share vocabulary with the internals.
type (
	// Memo is the application API handle (paper §6).
	Memo = core.Memo
	// Cluster is a booted simulated network.
	Cluster = cluster.Cluster
	// Options tune a cluster boot.
	Options = cluster.Options
	// ADF is a parsed Application Description File.
	ADF = adf.File
	// Key names a folder: a symbol plus a vector of unsigned integers.
	Key = symbol.Key
	// Symbol is an interned folder-name symbol.
	Symbol = symbol.Symbol
	// Value is a transferable datum (§3.1.3).
	Value = transferable.Value
)

// ParseADF parses an Application Description File (§4.3).
func ParseADF(src string) (*ADF, error) { return adf.Parse(src) }

// ValidateADF checks cross-section consistency.
func ValidateADF(f *ADF) error { return adf.Validate(f) }

// Boot starts a simulated cluster from a parsed ADF: one memo server per
// host, folder servers placed per the FOLDERS section, link latencies from
// the PPC costs, and the application registered everywhere (§4.4).
func Boot(f *ADF, opts Options) (*Cluster, error) { return cluster.Boot(f, opts) }

// BootADF parses and boots in one step.
func BootADF(src string, opts Options) (*Cluster, error) { return cluster.BootADF(src, opts) }
