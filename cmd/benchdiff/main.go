// Command benchdiff compares two directories of bench tables
// (BENCH_E<n>.json, written by `dmemo-bench -json`) and flags perf
// regressions: any time-per-op cell that got more than -threshold slower
// (default 15%), and ANY increase in an allocs/op cell — the allocation
// budget is a hard invariant (E13), not a tolerance band.
//
//	benchdiff old-dir new-dir            # report, exit 1 on regressions
//	benchdiff -threshold 0.25 old new    # looser time tolerance
//
// Tables are matched by experiment ID, rows by their first (label) column,
// and only metric columns are compared: column names containing "ns/op",
// "us/op", "ns/node", or "allocs/op". Rows or tables present on one side
// only are reported as informational, never as failures — experiments come
// and go across PRs.
//
// CI runs this advisorily against the committed baseline (bench-tables/):
// quick-mode numbers on shared runners are too noisy to gate merges, but
// the report in the log makes a perf cliff visible the moment it lands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// table mirrors internal/bench's stable tableJSON shape.
type table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "fractional time-per-op slowdown tolerated before flagging")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] <old-dir> <new-dir>")
		os.Exit(2)
	}
	oldTabs, err := loadDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newTabs, err := loadDir(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions := 0
	compared := 0
	ids := make([]string, 0, len(newTabs))
	for id := range newTabs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		nt := newTabs[id]
		ot, ok := oldTabs[id]
		if !ok {
			fmt.Printf("%s: new experiment (no baseline)\n", id)
			continue
		}
		oldRows := rowIndex(ot)
		for _, row := range nt.Rows {
			if len(row) == 0 {
				continue
			}
			oldRow, ok := oldRows[row[0]]
			if !ok {
				fmt.Printf("%s[%s]: new row (no baseline)\n", id, row[0])
				continue
			}
			for ci, col := range nt.Columns {
				kind := metricKind(col)
				if kind == metricNone || ci >= len(row) {
					continue
				}
				oci := columnIndex(ot.Columns, col)
				if oci < 0 || oci >= len(oldRow) {
					continue
				}
				oldV, ok1 := parseCell(oldRow[oci])
				newV, ok2 := parseCell(row[ci])
				if !ok1 || !ok2 {
					continue
				}
				compared++
				switch kind {
				case metricTime:
					if oldV > 0 && newV > oldV*(1+*threshold) {
						regressions++
						fmt.Printf("REGRESSION %s[%s] %s: %s -> %s (+%.1f%%, threshold %.0f%%)\n",
							id, row[0], col, oldRow[oci], row[ci], 100*(newV/oldV-1), 100**threshold)
					}
				case metricAllocs:
					// Any measurable increase trips: allocs/op is a budget,
					// and the fuzz term only absorbs AllocsPerRun averaging.
					if newV > oldV+0.01 {
						regressions++
						fmt.Printf("REGRESSION %s[%s] %s: %s -> %s (allocs/op may never rise)\n",
							id, row[0], col, oldRow[oci], row[ci])
					}
				}
			}
		}
	}

	fmt.Printf("benchdiff: %d metric cells compared, %d regression(s)\n", compared, regressions)
	if regressions > 0 {
		os.Exit(1)
	}
}

type metric int

const (
	metricNone metric = iota
	metricTime
	metricAllocs
)

// metricKind classifies a column by its name. Time-per-op columns follow the
// internal/bench conventions (ns/op, us/op, ns/node); allocation columns all
// contain "allocs".
func metricKind(col string) metric {
	c := strings.ToLower(col)
	switch {
	case strings.Contains(c, "allocs"):
		return metricAllocs
	case strings.Contains(c, "ns/op"), strings.Contains(c, "us/op"), strings.Contains(c, "ns/node"):
		return metricTime
	}
	return metricNone
}

// parseCell reads a numeric cell. internal/bench formats floats with %.4g,
// so plain ParseFloat covers every metric cell; anything else (durations,
// percentages, labels) is skipped by the caller.
func parseCell(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v, err == nil
}

// rowIndex keys a table's rows by their first (label) column. Later
// duplicates win, matching how a reader scans the table bottom-up; in
// practice labels are unique per experiment.
func rowIndex(t table) map[string][]string {
	idx := make(map[string][]string, len(t.Rows))
	for _, row := range t.Rows {
		if len(row) > 0 {
			idx[row[0]] = row
		}
	}
	return idx
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// loadDir reads every BENCH_*.json table under dir, keyed by experiment ID.
func loadDir(dir string) (map[string]table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%s: no BENCH_*.json tables", dir)
	}
	out := make(map[string]table, len(paths))
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var t table
		if err := json.Unmarshal(blob, &t); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if t.ID == "" {
			return nil, fmt.Errorf("%s: table has no id", p)
		}
		out[t.ID] = t
	}
	return out, nil
}
