// Command dmemo-bench regenerates the reproduction experiments (DESIGN.md
// §4, E1–E13), printing one table per experiment.
//
// Usage:
//
//	dmemo-bench                 # run everything at full scale
//	dmemo-bench -quick          # smaller workloads
//	dmemo-bench -exp E4         # one experiment
//	dmemo-bench -list           # list experiments
//	dmemo-bench -json out/      # also write one BENCH_E<n>.json per table
//
// With -json each experiment's table is additionally written as
// machine-readable JSON (BENCH_E<n>.json) under the given directory, so the
// perf trajectory can be tracked across PRs; the CI bench-smoke step uploads
// these files as an artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	exp := flag.String("exp", "", "run a single experiment by id (E1..E13)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonDir := flag.String("json", "", "also write each table as BENCH_E<n>.json under this directory")
	flag.Parse()

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	cfg := bench.Config{Quick: *quick}
	runners := bench.All()
	if *exp != "" {
		r, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dmemo-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}
	failed := false
	for _, r := range runners {
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmemo-bench: %s: %v\n", r.ID, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		if *jsonDir != "" {
			path, err := tbl.WriteJSON(*jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmemo-bench: %s: write json: %v\n", r.ID, err)
				failed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "dmemo-bench: wrote %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
