// Command dmemo-bench regenerates the reproduction experiments (DESIGN.md
// §4, E1–E14), printing one table per experiment.
//
// Usage:
//
//	dmemo-bench                 # run everything at full scale
//	dmemo-bench -quick          # smaller workloads
//	dmemo-bench -exp E4         # one experiment
//	dmemo-bench -list           # list experiments
//	dmemo-bench -json out/      # also write one BENCH_E<n>.json per table
//
// With -json each experiment's table is additionally written as
// machine-readable JSON (BENCH_E<n>.json) under the given directory, so the
// perf trajectory can be tracked across PRs; the CI bench-smoke step uploads
// these files as an artifact. The same directory also gets METRICS.json, a
// snapshot of the process-wide metric registry after the run — the counters
// and histograms the experiments themselves drove.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	exp := flag.String("exp", "", "run a single experiment by id (E1..E14)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonDir := flag.String("json", "", "also write each table as BENCH_E<n>.json under this directory")
	flag.Parse()

	if *list {
		for _, r := range bench.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	cfg := bench.Config{Quick: *quick}
	runners := bench.All()
	if *exp != "" {
		r, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dmemo-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		runners = []bench.Runner{r}
	}
	failed := false
	for _, r := range runners {
		tbl, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmemo-bench: %s: %v\n", r.ID, err)
			failed = true
			continue
		}
		tbl.Fprint(os.Stdout)
		if *jsonDir != "" {
			path, err := tbl.WriteJSON(*jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmemo-bench: %s: write json: %v\n", r.ID, err)
				failed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "dmemo-bench: wrote %s\n", path)
		}
	}
	if *jsonDir != "" {
		// Snapshot the registry the experiments drove: every rpc call,
		// pooled buffer, redial, and fsync above is in these counters.
		path := filepath.Join(*jsonDir, "METRICS.json")
		f, err := os.Create(path)
		if err == nil {
			err = obs.Default.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmemo-bench: write metrics snapshot: %v\n", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "dmemo-bench: wrote %s\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
