// Command memolint is the multichecker for this repository's custom
// analyzers. It loads every package in the module from source (no network,
// no external tooling — go/types and the source importer only) and applies:
//
//	poolcheck  pooled buffers reach pool.Put or an ownership transfer,
//	           and are never used after release
//	aliascheck aliasing decoder outputs don't outlive dispatch without Retain
//	lockcheck  WAL appends under the shard lock, fsyncs outside it,
//	           never two shard locks at once
//	errgate    errors that gate acknowledgements are checked before acking
//
// Exit status is 1 if any unsuppressed diagnostic is found. Suppressions
// (//memolint:ignore <analyzer> <reason>) require a written reason; -v lists
// them so reviews can audit every deviation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/aliascheck"
	"repro/internal/analysis/errgate"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/poolcheck"
)

func main() {
	var (
		root    = flag.String("root", "", "module root to analyze (default: walk up from cwd to go.mod)")
		strict  = flag.Bool("strict", false, "enable strict checks (poolcheck: release required on every path)")
		tests   = flag.Bool("tests", false, "also analyze _test.go files")
		verbose = flag.Bool("v", false, "list suppressed diagnostics with their reasons")
	)
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "memolint:", err)
			os.Exit(2)
		}
	}
	module, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memolint:", err)
		os.Exit(2)
	}

	analyzers := []*analysis.Analyzer{
		poolcheck.New(),
		aliascheck.New(),
		lockcheck.New(),
		errgate.New(),
	}
	for _, a := range analyzers {
		a.Strict = *strict
	}

	loader := analysis.NewLoader(dir, module)
	loader.IncludeTests = *tests
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memolint:", err)
		os.Exit(2)
	}

	failed := false
	suppressed := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memolint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			if d.Suppressed {
				suppressed++
				if *verbose {
					fmt.Fprintf(os.Stdout, "%s: %s: suppressed (%s): %s\n", d.Pos, d.Analyzer, d.Reason, d.Message)
				}
				continue
			}
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if *verbose || failed {
		fmt.Fprintf(os.Stderr, "memolint: %d package(s), %d suppression(s)\n", len(pkgs), suppressed)
	}
	if failed {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s (use -root)", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
