// Op mode: single-shot subcommands speaking to a running memoserverd over
// TCP. The launcher in main.go boots a whole simulated cluster; op mode is
// the black-box face of a real deployment — every Memo Language primitive
// reachable from a shell, with stable exit codes and an optional
// machine-readable result line, so test harnesses (test/e2e) and operators
// can drive and observe a live cluster without linking the client library.
//
//	memo put       -adf app.adf -addr 127.0.0.1:7440 -host a -key 7 -value hi
//	memo get-skip  -adf app.adf -addr 127.0.0.1:7440 -host a -key 7 -json
//	memo alt-take  -adf app.adf -addr 127.0.0.1:7440 -host a -keys 7,9/1.2
//
// Keys are numeric canonical form ("S" or "S/x0.x1"): symbol interning is
// per-process, so names minted by one process mean nothing to another — the
// number is the only spelling every client resolves identically.
//
// Exit codes: 0 the operation completed (including an empty get-skip);
// 1 the operation or connection failed; 2 usage error; 3 the -timeout
// expired before a blocking operation completed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memoserver"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transferable"
	"repro/internal/transport"
)

const (
	exitOK      = 0
	exitErr     = 1
	exitUsage   = 2
	exitTimeout = 3
)

// opNames is the dispatch set main() consults: anything else falls through
// to the legacy launcher, so "memo app.adf" keeps working.
var opNames = map[string]bool{
	"put": true, "put-delayed": true,
	"get": true, "get-copy": true, "get-skip": true,
	"alt-take": true, "alt-skip": true, "watch": true,
	"register": true, "ping": true, "pump": true, "fetch": true,
}

// opFlags is the flag surface every op subcommand shares.
type opFlags struct {
	fs      *flag.FlagSet
	adfPath string
	addr    string
	host    string
	timeout time.Duration
	jsonOut bool
	retries int
	lambda  float64
	trace   bool
	// lastTrace reports the trace ID the client stamped (set by connect, 0
	// until a request ran); emit folds it into the result when -trace is on.
	lastTrace func() uint64
}

func newOpFlags(op string) *opFlags {
	o := &opFlags{fs: flag.NewFlagSet("memo "+op, flag.ContinueOnError)}
	o.fs.StringVar(&o.adfPath, "adf", "", "application description file (for the app name and folder placement)")
	o.fs.StringVar(&o.addr, "addr", "", "TCP address of the memo server to speak to")
	o.fs.StringVar(&o.host, "host", "", "logical host name of that memo server (as in the ADF)")
	o.fs.DurationVar(&o.timeout, "timeout", 0, "abandon a blocking operation after this long (0 = wait forever); exit code 3")
	o.fs.BoolVar(&o.jsonOut, "json", false, "print a single JSON result line on stdout")
	o.fs.IntVar(&o.retries, "retries", 2, "transparent retries of the request after a link failure (dedup tokens keep them exactly-once)")
	o.fs.Float64Var(&o.lambda, "lambda", 0, "placement topology attenuation; must match the value the daemons registered with")
	o.fs.BoolVar(&o.trace, "trace", false, "mark the request sampled: every hop collects spans into its /tracez ring, and the result reports the trace ID for `memo trace`")
	return o
}

// result is the -json line. Every subcommand emits exactly one.
type result struct {
	OK    bool   `json:"ok"`
	Op    string `json:"op"`
	Key   string `json:"key,omitempty"`
	Value string `json:"value,omitempty"`
	Empty bool   `json:"empty,omitempty"`
	Error string `json:"error,omitempty"`
	Trace string `json:"trace,omitempty"`
}

// runOp executes one subcommand and returns the process exit code.
func runOp(op string, args []string) int {
	o := newOpFlags(op)
	var (
		key, dest, keys, value string
		targetHost, dir        string
	)
	switch op {
	case "put":
		o.fs.StringVar(&key, "key", "", "folder key (canonical numeric form)")
		o.fs.StringVar(&value, "value", "", "string value to deposit")
	case "put-delayed":
		o.fs.StringVar(&key, "key", "", "trigger folder key")
		o.fs.StringVar(&dest, "dest", "", "destination folder key revealed on trigger")
		o.fs.StringVar(&value, "value", "", "string value to deposit")
	case "get", "get-copy", "get-skip", "watch":
		o.fs.StringVar(&key, "key", "", "folder key (canonical numeric form)")
	case "alt-take", "alt-skip":
		o.fs.StringVar(&keys, "keys", "", "comma-separated folder keys")
	case "pump", "fetch":
		o.fs.StringVar(&targetHost, "target-host", "", "host whose program folder to address")
		o.fs.StringVar(&dir, "dir", "", "PROCESSES directory name of the program")
		if op == "pump" {
			o.fs.StringVar(&value, "value", "", "program image to ship")
		}
	}
	if err := o.fs.Parse(args); err != nil {
		return exitUsage
	}
	if o.adfPath == "" || o.addr == "" || o.host == "" {
		fmt.Fprintf(os.Stderr, "memo %s: -adf, -addr, and -host are required\n", op)
		return exitUsage
	}

	m, client, err := o.connect()
	if err != nil {
		return emit(o, result{Op: op, Error: err.Error()}, exitErr)
	}
	defer m.Close()

	// One cancel channel serves every blocking call; a fired timer turns the
	// resulting ErrCanceled into the dedicated timeout exit code.
	var cancel chan struct{}
	timedOut := false
	if o.timeout > 0 {
		cancel = make(chan struct{})
		t := time.AfterFunc(o.timeout, func() { timedOut = true; close(cancel) })
		defer t.Stop()
	}
	code := func(err error) int {
		if timedOut && err != nil {
			return exitTimeout
		}
		return exitErr
	}

	switch op {
	case "put":
		k, err := parseKey(key)
		if err != nil {
			return usage(op, err)
		}
		if err := m.Put(k, transferable.String(value)); err != nil {
			return emit(o, result{Op: op, Key: key, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op, Key: key, Value: value}, exitOK)

	case "put-delayed":
		k, err := parseKey(key)
		if err != nil {
			return usage(op, err)
		}
		d, err := parseKey(dest)
		if err != nil {
			return usage(op, err)
		}
		if err := m.PutDelayed(k, d, transferable.String(value)); err != nil {
			return emit(o, result{Op: op, Key: key, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op, Key: key, Value: value}, exitOK)

	case "get", "get-copy", "watch":
		k, err := parseKey(key)
		if err != nil {
			return usage(op, err)
		}
		var v transferable.Value
		if op == "get" {
			v, err = m.GetCancel(k, cancel)
		} else {
			// watch = get-copy: observe without consuming.
			v, err = m.GetCopyCancel(k, cancel)
		}
		if err != nil {
			return emit(o, result{Op: op, Key: key, Error: err.Error()}, code(err))
		}
		return emit(o, result{OK: true, Op: op, Key: key, Value: valueString(v)}, exitOK)

	case "get-skip":
		k, err := parseKey(key)
		if err != nil {
			return usage(op, err)
		}
		v, ok, err := m.GetSkip(k)
		if err != nil {
			return emit(o, result{Op: op, Key: key, Error: err.Error()}, exitErr)
		}
		if !ok {
			return emit(o, result{OK: true, Op: op, Key: key, Empty: true}, exitOK)
		}
		return emit(o, result{OK: true, Op: op, Key: key, Value: valueString(v)}, exitOK)

	case "alt-take", "alt-skip":
		ks, err := parseKeys(keys)
		if err != nil {
			return usage(op, err)
		}
		if op == "alt-skip" {
			k, v, ok, err := m.GetAltSkip(ks...)
			if err != nil {
				return emit(o, result{Op: op, Error: err.Error()}, exitErr)
			}
			if !ok {
				return emit(o, result{OK: true, Op: op, Empty: true}, exitOK)
			}
			return emit(o, result{OK: true, Op: op, Key: k.Canon(), Value: valueString(v)}, exitOK)
		}
		k, v, err := m.GetAltCancel(cancel, ks...)
		if err != nil {
			return emit(o, result{Op: op, Error: err.Error()}, code(err))
		}
		return emit(o, result{OK: true, Op: op, Key: k.Canon(), Value: valueString(v)}, exitOK)

	case "register":
		src, err := os.ReadFile(o.adfPath)
		if err != nil {
			return emit(o, result{Op: op, Error: err.Error()}, exitErr)
		}
		if err := client.Register(string(src)); err != nil {
			return emit(o, result{Op: op, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op}, exitOK)

	case "ping":
		if err := client.Ping(); err != nil {
			return emit(o, result{Op: op, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op}, exitOK)

	case "pump":
		if err := m.PumpProgram(targetHost, dir, []byte(value)); err != nil {
			return emit(o, result{Op: op, Key: dir, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op, Key: dir}, exitOK)

	case "fetch":
		blob, err := m.FetchProgram(targetHost, dir)
		if err != nil {
			return emit(o, result{Op: op, Key: dir, Error: err.Error()}, exitErr)
		}
		return emit(o, result{OK: true, Op: op, Key: dir, Value: string(blob)}, exitOK)
	}
	fmt.Fprintf(os.Stderr, "memo: unknown op %q\n", op)
	return exitUsage
}

// connect replicates cluster.NewMemo over real TCP: same ADF, same routing
// table, same placement options — so a key maps to the same folder server
// here as inside every daemon and library client.
func (o *opFlags) connect() (*core.Memo, *memoserver.Client, error) {
	src, err := os.ReadFile(o.adfPath)
	if err != nil {
		return nil, nil, err
	}
	f, err := adf.Parse(string(src))
	if err != nil {
		return nil, nil, err
	}
	if err := adf.Validate(f); err != nil {
		return nil, nil, err
	}
	h, ok := f.HostByName(o.host)
	if !ok {
		return nil, nil, fmt.Errorf("host %q not in ADF %s", o.host, o.adfPath)
	}
	g, err := f.Graph()
	if err != nil {
		return nil, nil, err
	}
	place, err := placement.New(f, routing.Build(g), placement.Options{Lambda: o.lambda})
	if err != nil {
		return nil, nil, err
	}

	tcp := transport.NewTCP()
	// The client library addresses the daemon by its logical name; a CLI
	// process is always pointed at one concrete TCP endpoint, so the dialer
	// ignores the logical address.
	dial := func(srcHost, addr string) (transport.Conn, error) { return tcp.Dial(o.addr) }
	client, err := memoserver.DialClientResilient(dial, o.host, f.App, rpc.Policy{},
		rpc.Resilience{Heartbeat: rpc.DefaultHeartbeat, Retries: o.retries})
	if err != nil {
		return nil, nil, err
	}
	if o.trace {
		client.EnableSampling()
	}
	o.lastTrace = client.LastTraceID
	m, err := core.New(core.Config{
		App:      f.App,
		Host:     o.host,
		Domain:   cluster.DomainFor(h.Arch),
		Registry: symbol.NewRegistry(),
		Place:    place,
		Client:   client,
	})
	if err != nil {
		client.Close()
		return nil, nil, err
	}
	return m, client, nil
}

// parseKey accepts the canonical numeric key form: "S" or "S/x0.x1".
func parseKey(s string) (symbol.Key, error) {
	if s == "" {
		return symbol.Key{}, fmt.Errorf("missing -key")
	}
	return symbol.ParseCanon(s)
}

// parseKeys splits a comma-separated list of canonical keys.
func parseKeys(s string) ([]symbol.Key, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -keys")
	}
	parts := strings.Split(s, ",")
	ks := make([]symbol.Key, len(parts))
	for i, p := range parts {
		k, err := symbol.ParseCanon(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		ks[i] = k
	}
	return ks, nil
}

// valueString renders a fetched transferable for display: strings verbatim,
// everything else through its Go representation.
func valueString(v transferable.Value) string {
	if s, ok := transferable.AsString(v); ok {
		return s
	}
	return fmt.Sprint(transferable.ToGo(v))
}

// emit prints the op's one result line and passes the exit code through.
func emit(o *opFlags, r result, code int) int {
	if o.trace && o.lastTrace != nil {
		if id := o.lastTrace(); id != 0 {
			r.Trace = fmt.Sprintf("%#x", id)
		}
	}
	if o.jsonOut {
		b, err := json.Marshal(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memo: encode result:", err)
			return exitErr
		}
		fmt.Println(string(b))
		return code
	}
	switch {
	case r.Error != "":
		fmt.Fprintf(os.Stderr, "memo %s: %s\n", r.Op, r.Error)
	case r.Empty:
		fmt.Printf("%s %s: empty\n", r.Op, r.Key)
	case r.Value != "":
		fmt.Printf("%s %s: %s\n", r.Op, r.Key, r.Value)
	default:
		fmt.Printf("%s %s: ok\n", r.Op, r.Key)
	}
	if r.Trace != "" {
		fmt.Printf("trace %s (fetch with: memo trace %s)\n", r.Trace, r.Trace)
	}
	return code
}

func usage(op string, err error) int {
	fmt.Fprintf(os.Stderr, "memo %s: %v\n", op, err)
	return exitUsage
}
