package main

import (
	"encoding/json"
	"testing"

	"repro/internal/symbol"
	"repro/internal/transferable"
)

func TestParseKeys(t *testing.T) {
	ks, err := parseKeys("7, 9/1.2 ,11")
	if err != nil {
		t.Fatal(err)
	}
	want := []symbol.Key{symbol.K(7), symbol.K(9, 1, 2), symbol.K(11)}
	if len(ks) != len(want) {
		t.Fatalf("parsed %d keys, want %d", len(ks), len(want))
	}
	for i := range ks {
		if !ks[i].Equal(want[i]) {
			t.Errorf("key %d = %v, want %v", i, ks[i], want[i])
		}
	}
	if _, err := parseKeys(""); err == nil {
		t.Error("empty -keys accepted")
	}
	if _, err := parseKeys("7,notakey"); err == nil {
		t.Error("malformed key accepted")
	}
}

func TestValueString(t *testing.T) {
	if got := valueString(transferable.String("hi")); got != "hi" {
		t.Errorf("string value rendered %q", got)
	}
	if got := valueString(transferable.Int64(42)); got != "42" {
		t.Errorf("int value rendered %q", got)
	}
}

// TestResultJSONShape pins the -json contract the e2e harness parses.
func TestResultJSONShape(t *testing.T) {
	b, err := json.Marshal(result{OK: true, Op: "get-skip", Key: "7", Empty: true})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ok":true,"op":"get-skip","key":"7","empty":true}`
	if string(b) != want {
		t.Errorf("json line %s, want %s", b, want)
	}
}
