// Diagnostic mode: cluster-wide observability from the shell.
//
//	memo top   -nodes a=127.0.0.1:6060,b=127.0.0.1:6061        # refreshing cluster table
//	memo top   -ready-files 'a.ready,b.ready' -once            # one-shot, addrs from ready files
//	memo trace -nodes ... 0x1f3a8c22d9e47b01                   # one trace's merged timeline
//
// Both subcommands scrape the daemons' debug endpoints (-debug-addr):
// `top` renders one row per node from /statusz (which embeds the /metrics
// snapshot, the slow-request totals, and peer-link health), and `trace`
// fetches one trace ID's samples from every node's /tracez ring and merges
// them into a single time-ordered span timeline — the entry node holds the
// full tree, relay nodes hold their subtrees, and the merge dedups the
// overlap. Node addresses come from -nodes (name=addr pairs) or from daemon
// ready files, whose `debug <addr>` line memoserverd/folderserverd write
// when started with both -ready-file and -debug-addr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// nodeTarget is one scrape target: a display name and a debug address.
type nodeTarget struct {
	Name string
	Addr string
}

// parseTargets builds the scrape list from -nodes ("name=addr" or bare
// "addr", comma-separated) and -ready-files (comma-separated paths; the
// name is the file's base name minus its extension, the address the
// `debug <addr>` line the daemons write).
func parseTargets(nodes, readyFiles string) ([]nodeTarget, error) {
	var out []nodeTarget
	for _, part := range strings.Split(nodes, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, addr, ok := strings.Cut(part, "="); ok {
			out = append(out, nodeTarget{Name: name, Addr: addr})
		} else {
			out = append(out, nodeTarget{Name: part, Addr: part})
		}
	}
	for _, path := range strings.Split(readyFiles, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		addr := ""
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "debug "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		if addr == "" {
			return nil, fmt.Errorf("%s: no `debug <addr>` line (daemon started without -debug-addr?)", path)
		}
		name := filepath.Base(path)
		name = strings.TrimSuffix(name, filepath.Ext(name))
		out = append(out, nodeTarget{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no targets: give -nodes or -ready-files")
	}
	return out, nil
}

// scrapeJSON fetches one debug endpoint and decodes its JSON body. The
// short timeout keeps a dead node from stalling the whole table.
func scrapeJSON(addr, path string, v any) error {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// statuszView is the subset of /statusz `memo top` renders.
type statuszView struct {
	Metrics []struct {
		Name    string `json:"name"`
		Samples []struct {
			Value *int64 `json:"value,omitempty"`
		} `json:"samples"`
	} `json:"metrics"`
	Links    json.RawMessage `json:"links"`
	SlowTot  int64           `json:"slow_requests_total"`
	TraceTot int64           `json:"traces_total"`
}

// sum adds every sample of one series (all label sets).
func (s *statuszView) sum(name string) int64 {
	var total int64
	for i := range s.Metrics {
		if s.Metrics[i].Name != name {
			continue
		}
		for _, smp := range s.Metrics[i].Samples {
			if smp.Value != nil {
				total += *smp.Value
			}
		}
	}
	return total
}

// linkSummary condenses the /statusz links array (LinkStats / RedialerStats)
// into "dials/faults" plus the first live error, if any.
func (s *statuszView) linkSummary() string {
	if len(s.Links) == 0 {
		return "-"
	}
	var links []struct {
		Peer    string `json:"Peer"`
		Dials   int64  `json:"Dials"`
		Faults  int64  `json:"Faults"`
		LastErr string `json:"LastErr"`
	}
	if err := json.Unmarshal(s.Links, &links); err != nil {
		return "-"
	}
	var dials, faults int64
	firstErr := ""
	for _, l := range links {
		dials += l.Dials
		faults += l.Faults
		if firstErr == "" && l.LastErr != "" {
			firstErr = l.Peer + ": " + l.LastErr
		}
	}
	out := fmt.Sprintf("%d/%d", dials, faults)
	if firstErr != "" {
		out += " (" + firstErr + ")"
	}
	return out
}

// runTop renders the cluster table: one row per node, refreshed every
// -interval until interrupted (or exactly once with -once).
func runTop(args []string) int {
	fs := flag.NewFlagSet("memo top", flag.ContinueOnError)
	nodes := fs.String("nodes", "", "comma-separated name=debug-addr (or bare debug-addr) scrape targets")
	ready := fs.String("ready-files", "", "comma-separated daemon ready files naming their debug endpoints")
	once := fs.Bool("once", false, "render one table and exit")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	targets, err := parseTargets(*nodes, *ready)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memo top:", err)
		return exitUsage
	}
	for {
		renderTop(os.Stdout, targets)
		if *once {
			return exitOK
		}
		time.Sleep(*interval)
		fmt.Println()
	}
}

func renderTop(w io.Writer, targets []nodeTarget) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tUP\tLOCAL\tFWD\tRETRY\tRPC\tMEMOS\tHIDDEN\tSLOW\tTRACES\tLINKS d/f")
	for _, t := range targets {
		var st statuszView
		if err := scrapeJSON(t.Addr, "/statusz", &st); err != nil {
			fmt.Fprintf(tw, "%s\tdown\t-\t-\t-\t-\t-\t-\t-\t-\t%v\n", t.Name, err)
			continue
		}
		fmt.Fprintf(tw, "%s\tyes\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			t.Name,
			st.sum("node_local_ops_total"),
			st.sum("node_forwards_total"),
			st.sum("node_retried_total"),
			st.sum("rpc_server_requests_total"),
			st.sum("folder_memos"),
			st.sum("folder_delayed_hidden"),
			st.SlowTot,
			st.TraceTot,
			st.linkSummary())
	}
	tw.Flush()
}

// runTrace merges one trace's spans from every node's /tracez ring into a
// time-ordered timeline. Exit code 1 when no node holds the trace.
func runTrace(args []string) int {
	fs := flag.NewFlagSet("memo trace", flag.ContinueOnError)
	nodes := fs.String("nodes", "", "comma-separated name=debug-addr (or bare debug-addr) scrape targets")
	ready := fs.String("ready-files", "", "comma-separated daemon ready files naming their debug endpoints")
	jsonOut := fs.Bool("json", false, "print the merged spans as one JSON object")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	id := fs.Arg(0)
	if id == "" {
		fmt.Fprintln(os.Stderr, "memo trace: usage: memo trace [flags] <trace-id>")
		return exitUsage
	}
	if _, err := strconv.ParseUint(id, 0, 64); err != nil {
		fmt.Fprintf(os.Stderr, "memo trace: bad trace id %q: %v\n", id, err)
		return exitUsage
	}
	targets, err := parseTargets(*nodes, *ready)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memo trace:", err)
		return exitUsage
	}

	// Collect every node's samples for the trace. One request can leave
	// several samples per node (retries, several hops served by one node)
	// and the entry node's full tree overlaps the relays' subtrees, so the
	// merge dedups on span identity.
	var spans []wire.Span
	seen := map[string]bool{}
	scraped := 0
	for _, t := range targets {
		var body struct {
			Recent []obs.TraceSample `json:"recent"`
		}
		if err := scrapeJSON(t.Addr, "/tracez?trace="+id, &body); err != nil {
			fmt.Fprintf(os.Stderr, "memo trace: node %s: %v\n", t.Name, err)
			continue
		}
		scraped++
		for _, ts := range body.Recent {
			for _, sp := range ts.Spans {
				key := fmt.Sprintf("%s|%s|%s|%d|%d|%d|%d", sp.Node, sp.Layer, sp.Op, sp.Hop, sp.Start, sp.Dur, sp.Wait)
				if seen[key] {
					continue
				}
				seen[key] = true
				spans = append(spans, sp)
			}
		}
	}
	if scraped == 0 {
		fmt.Fprintln(os.Stderr, "memo trace: no node answered")
		return exitErr
	}
	if len(spans) == 0 {
		fmt.Fprintf(os.Stderr, "memo trace: trace %s not found on %d node(s) (ring evicted, or never sampled)\n", id, scraped)
		return exitErr
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Hop < spans[j].Hop
	})

	if *jsonOut {
		b, err := json.Marshal(struct {
			Trace string      `json:"trace"`
			Spans []wire.Span `json:"spans"`
		}{id, spans})
		if err != nil {
			fmt.Fprintln(os.Stderr, "memo trace: encode:", err)
			return exitErr
		}
		fmt.Println(string(b))
		return exitOK
	}

	nodeSet := map[string]bool{}
	for _, sp := range spans {
		nodeSet[sp.Node] = true
	}
	fmt.Printf("trace %s: %d spans across %d node(s)\n", id, len(spans), len(nodeSet))
	base := spans[0].Start
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "START\tDUR\tWAIT\tNODE\tLAYER\tOP\tFOLDER\tHOP")
	for _, sp := range spans {
		wait := "-"
		if sp.Wait > 0 {
			wait = time.Duration(sp.Wait).String()
		}
		fmt.Fprintf(tw, "+%v\t%v\t%s\t%s\t%s\t%s\t%d\t%d\n",
			time.Duration(sp.Start-base), time.Duration(sp.Dur), wait,
			sp.Node, sp.Layer, sp.Op, sp.Folder, sp.Hop)
	}
	tw.Flush()
	return exitOK
}
