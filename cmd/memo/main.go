// Command memo is the D-Memo application launcher (paper §4.4): "the user
// enters 'memo adf' on the command line". It parses and validates the ADF
// (merging in a system default ADF if one is given), registers the
// application with the memo servers, and starts the application's processes.
//
// The paper's launcher recompiled the boss/worker directories and started
// real executables on each host. In this reproduction the network is
// simulated in-process, so memo boots the simulated cluster and runs a
// built-in demo program per process (-demo), or simply validates and prints
// the registration plan (-n).
//
// Usage:
//
//	memo app.adf                    # validate, boot, register, report
//	memo -n app.adf                 # dry run: validate and print the plan
//	memo -default system.adf app.adf
//	memo -demo jobjar app.adf       # run the built-in job-jar demo workload
//
// When the first argument names a Memo Language operation (put, get,
// get-skip, alt-take, ...), memo instead runs that single operation against
// a live memoserverd over TCP — see ops.go for the op-mode contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/transferable"
)

func main() {
	// Op mode: "memo <op> [flags]" runs one Memo Language operation against
	// a live daemon; "memo top"/"memo trace" scrape the daemons' debug
	// endpoints (diag.go). Anything else is the classic launcher path.
	if len(os.Args) >= 2 {
		switch {
		case os.Args[1] == "top":
			os.Exit(runTop(os.Args[2:]))
		case os.Args[1] == "trace":
			os.Exit(runTrace(os.Args[2:]))
		case opNames[os.Args[1]]:
			os.Exit(runOp(os.Args[1], os.Args[2:]))
		}
	}
	dryRun := flag.Bool("n", false, "validate and print the plan without booting")
	defaultADF := flag.String("default", "", "system default ADF supplying missing sections")
	demo := flag.String("demo", "", "run a built-in demo workload: jobjar")
	latency := flag.Duration("latency", 0, "simulated base link latency (e.g. 200us)")
	lambda := flag.Float64("lambda", 0, "placement topology attenuation (§5)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memo [flags] <adf-file>")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *defaultADF, *dryRun, *demo, *latency, *lambda); err != nil {
		fmt.Fprintln(os.Stderr, "memo:", err)
		os.Exit(1)
	}
}

func run(adfPath, defaultPath string, dryRun bool, demo string, latency time.Duration, lambda float64) error {
	src, err := os.ReadFile(adfPath)
	if err != nil {
		return err
	}
	f, err := adf.Parse(string(src))
	if err != nil {
		return err
	}
	if defaultPath != "" {
		dsrc, err := os.ReadFile(defaultPath)
		if err != nil {
			return err
		}
		def, err := adf.Parse(string(dsrc))
		if err != nil {
			return fmt.Errorf("default ADF: %w", err)
		}
		f = adf.Merge(def, f)
	}
	if err := adf.Validate(f); err != nil {
		return err
	}

	fmt.Printf("application %q\n", f.App)
	fmt.Printf("  hosts:          %d\n", len(f.Hosts))
	fmt.Printf("  folder servers: %d\n", len(f.Folders))
	fmt.Printf("  processes:      %d\n", len(f.Processes))
	fmt.Printf("  links:          %d\n", len(f.Links))
	if dryRun {
		fmt.Print("\nnormalized ADF:\n\n")
		fmt.Print(adf.Format(f))
		return nil
	}

	c, err := cluster.Boot(f, cluster.Options{BaseLatency: latency, Lambda: lambda})
	if err != nil {
		return err
	}
	defer c.Shutdown()
	fmt.Println("\ncluster booted; application registered with every memo server")
	for host, share := range c.Place.HostShares() {
		fmt.Printf("  intended memo share %-12s %.1f%%\n", host, 100*share)
	}

	switch demo {
	case "":
		fmt.Println("no demo selected; shutting down (use -demo jobjar to run a workload)")
		return nil
	case "jobjar":
		return demoJobJar(c, f)
	}
	return fmt.Errorf("unknown demo %q", demo)
}

// demoJobJar runs the paper's boss/worker paradigm: the boss drops tasks in
// a job jar, workers drain it, results return through a results folder.
// Before launch it "pumps" a program image for every PROCESSES directory to
// the hosts that run it — the §4.4 executable distribution for hosts
// without NFS.
func demoJobJar(c *cluster.Cluster, f *adf.File) error {
	if err := pumpPrograms(c, f); err != nil {
		return err
	}
	const tasks = 64
	var processed atomic.Int64
	bodies := map[string]cluster.ProcFunc{}
	boss := func(p adf.Process, m *core.Memo) error {
		jobs := m.NamedKey("jobs")
		results := m.NamedKey("results")
		for i := 0; i < tasks; i++ {
			if err := m.Put(jobs, transferable.Int64(int64(i))); err != nil {
				return err
			}
		}
		var sum int64
		for i := 0; i < tasks; i++ {
			v, err := m.Get(results)
			if err != nil {
				return err
			}
			n, _ := transferable.AsInt(v)
			sum += n
		}
		// Poison one per non-boss process. A lost poison pill hangs that
		// worker forever, so the error must surface.
		for i := 0; i < len(f.Processes)-1; i++ {
			if err := m.Put(jobs, transferable.Int64(-1)); err != nil {
				return err
			}
		}
		fmt.Printf("boss: %d tasks done, checksum %d\n", tasks, sum)
		return nil
	}
	worker := func(p adf.Process, m *core.Memo) error {
		jobs := m.NamedKey("jobs")
		results := m.NamedKey("results")
		for {
			v, err := m.Get(jobs)
			if err != nil {
				return err
			}
			n, _ := transferable.AsInt(v)
			if n < 0 {
				return nil
			}
			processed.Add(1)
			if err := m.Put(results, transferable.Int64(n*n)); err != nil {
				return err
			}
		}
	}
	// Process directory names come from the ADF; the first process id is
	// the boss by convention, all directories map to boss/worker programs.
	seen := map[string]bool{}
	for i, p := range f.Processes {
		if seen[p.Dir] {
			continue
		}
		seen[p.Dir] = true
		if i == 0 {
			bodies[p.Dir] = boss
		} else {
			bodies[p.Dir] = worker
		}
	}
	if err := c.Run(bodies); err != nil {
		return err
	}

	fmt.Printf("workers processed %d tasks\n", processed.Load())
	fmt.Println("observed memo distribution:")
	for host, share := range c.HostPutShares() {
		fmt.Printf("  %-12s %.1f%%\n", host, 100*share)
	}
	return nil
}

// pumpPrograms ships a synthetic program image per PROCESSES directory to
// each host that runs it, then verifies the fetch path.
func pumpPrograms(c *cluster.Cluster, f *adf.File) error {
	m, err := c.NewMemo(f.Hosts[0].Name)
	if err != nil {
		return err
	}
	shipped := map[string]bool{}
	for _, p := range f.Processes {
		key := p.Dir + "@" + p.Host
		if shipped[key] {
			continue
		}
		shipped[key] = true
		image := []byte("#!dmemo-program " + p.Dir)
		if err := m.PumpProgram(p.Host, p.Dir, image); err != nil {
			return fmt.Errorf("pump %s to %s: %w", p.Dir, p.Host, err)
		}
		back, err := m.FetchProgram(p.Host, p.Dir)
		if err != nil || string(back) != string(image) {
			return fmt.Errorf("verify pumped %s on %s: %v", p.Dir, p.Host, err)
		}
	}
	fmt.Printf("pumped %d program images to their hosts (no NFS needed)\n", len(shipped))
	return nil
}
