// Command folderserverd runs one standalone folder server over TCP: a
// directory of unordered queues speaking the wire protocol directly.
// Normally folder servers live inside each host's memo server (Fig. 1); a
// standalone daemon is useful for dedicating a machine to folder storage or
// for debugging the protocol with raw clients.
//
//	folderserverd -id 3 -host bonnie -listen :7441
//
// With -data-dir the directory is durable: every mutation is write-ahead
// logged (group-committed per -fsync), snapshots truncate the log, and a
// restart — clean or after a crash — recovers every acknowledged memo,
// including still-hidden put_delayed values and applied dedup tokens.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/folder"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/sharedmem"
	"repro/internal/threadcache"
	"repro/internal/transport"
)

func main() {
	id := flag.Int("id", 0, "folder server id (from the ADF FOLDERS section)")
	host := flag.String("host", "", "logical host name")
	listen := flag.String("listen", ":7441", "TCP listen address")
	arena := flag.Int("arena", 0, "shared-memory arena size in bytes (0 = heap)")
	arch := flag.String("arch", "sun4", "architecture name selecting the shared-memory protocol")
	noCache := flag.Bool("no-thread-cache", false, "disable thread caching (E1 ablation)")
	shards := flag.Int("shards", 0, "store lock-stripe count, rounded up to a power of two (0 = default)")
	batchMax := flag.Int("batch-max", 0, "max requests coalesced per rpc batch frame (0 = default 64; 1 disables batching)")
	batchBytes := flag.Int("batch-bytes", 0, "max encoded bytes per rpc batch frame (0 = default 64KiB)")
	batchLinger := flag.Duration("batch-linger", 0, "upper bound a queued response waits for batch companions (0 = default 100µs)")
	idleTimeout := flag.Duration("idle-timeout", 15*time.Second, "close connections silent for this long (0 = never; rpc clients heartbeat when their receive side goes quiet, so only legacy raw-wire clients with long blocking waits need this off)")
	dataDir := flag.String("data-dir", "", "directory for durability (per-shard WAL + snapshots); empty keeps folders in memory only")
	fsync := flag.String("fsync", "batch", "WAL sync policy: batch (group commit), always (fsync per record), never (trust the OS cache)")
	snapshotEvery := flag.Int("snapshot-every", 0, "records between WAL snapshot+truncate cycles (0 = default, negative = never)")
	debugAddr := flag.String("debug-addr", "", "serve the debug endpoints (/metrics, /statusz, /slowz, /debug/pprof/) on this address (e.g. localhost:6060); empty disables them")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -debug-addr")
	slowThreshold := flag.Duration("slow-request-threshold", 0, "record requests whose handling takes at least this long in the slow-request log (/slowz); 0 disables span timing")
	traceSample := flag.Float64("trace-sample", 0, "span-sample this fraction of entry requests into /tracez (1 = all, 0 = none); requests a memo server already sampled are always traced through")
	traceRing := flag.Int("trace-ring", 0, "sampled traces kept in the /tracez ring (0 = default 256)")
	readyFile := flag.String("ready-file", "", "after the listener is bound, atomically write the actual TCP address here (supports -listen :0; harnesses poll this file for readiness). With -debug-addr a second line `debug <addr>` names the debug endpoint")
	flag.Parse()

	if *host == "" {
		fmt.Fprintln(os.Stderr, "folderserverd: -host is required")
		os.Exit(2)
	}
	if *debugAddr == "" {
		*debugAddr = *pprofAddr
	}
	var opts []folder.Option
	if *arena > 0 {
		opts = append(opts, folder.WithArena(sharedmem.New(*arch, *arena)))
	}
	if *shards > 0 {
		opts = append(opts, folder.WithShards(*shards))
	}
	pol := rpc.Policy{MaxCount: *batchMax, MaxBytes: *batchBytes, Linger: *batchLinger}
	cache := threadcache.Config{Disable: *noCache}
	var slow *obs.SlowLog
	if *slowThreshold > 0 {
		slow = obs.NewSlowLog(*slowThreshold, 0)
		slow.SetEmit(func(e obs.SlowEntry) {
			log.Printf("folderserverd: slow request trace=%x hop=%d op=%s folder=%d at=%s took=%v",
				e.Trace, e.Hop, e.Op, e.Folder, e.Where, e.Dur)
		})
	}
	// The tracer exists even at -trace-sample 0: a request some memo server
	// sampled upstream still collects spans here (relay-only mode).
	tracer := obs.NewTracer(fmt.Sprintf("folder-%d@%s", *id, *host), *traceSample, *traceRing)
	srvOpts := []folder.ServerOption{folder.WithBatchPolicy(pol), folder.WithSlowLog(slow), folder.WithTracer(tracer)}

	var srv *folder.Server
	if *dataDir != "" {
		syncMode, err := durable.ParseSyncMode(*fsync)
		if err != nil {
			log.Fatalf("folderserverd: %v", err)
		}
		dcfg := durable.Config{Sync: syncMode, SnapshotEvery: *snapshotEvery}
		srv, err = folder.OpenServer(*id, *host, *dataDir, dcfg, cache, opts, srvOpts...)
		if err != nil {
			log.Fatalf("folderserverd: %v", err)
		}
		st := srv.Store()
		log.Printf("folderserverd: recovered %d memos, %d hidden delayed values, %d folders from %s",
			st.MemoCount(), st.DelayedCount(), st.FolderCount(), *dataDir)
	} else {
		srv = folder.NewServer(*id, *host, folder.NewStore(opts...), cache, srvOpts...)
	}
	srv.RegisterMetrics(obs.Default)

	tcp := transport.NewTCP()
	tcp.IdleTimeout = *idleTimeout
	l, err := tcp.Listen(*listen)
	if err != nil {
		log.Fatalf("folderserverd: %v", err)
	}
	log.Printf("folderserverd: folder server %d on %s listening at %s", *id, *host, l.Addr())

	// The debug server unifies /metrics, /statusz, /slowz, /tracez, and pprof
	// on one listener: off by default, and when enabled, bind a loopback
	// address unless you mean to expose the profiler. Started before the
	// ready file is published so the file can carry the debug address too.
	var debug *obs.DebugServer
	if *debugAddr != "" {
		debug = obs.NewDebugServer(*debugAddr, []*obs.Registry{obs.Default}, slow,
			obs.WithTraceRing(tracer.Ring()))
		if err := debug.Start(); err != nil {
			log.Fatalf("folderserverd: debug server: %v", err)
		}
		log.Printf("folderserverd: debug endpoints on %s", debug.Addr())
	}
	if *readyFile != "" {
		// Publish the readiness info atomically (temp file + rename) so a
		// polling harness never reads a torn write: bound address first,
		// then `debug <addr>` when the debug server is up.
		ready := l.Addr() + "\n"
		if debug != nil {
			ready += "debug " + debug.Addr() + "\n"
		}
		tmp := *readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ready), 0o644); err != nil {
			log.Fatalf("folderserverd: ready file: %v", err)
		}
		if err := os.Rename(tmp, *readyFile); err != nil {
			log.Fatalf("folderserverd: ready file: %v", err)
		}
	}

	// Serve until SIGINT/SIGTERM: stop accepting, then flush and close the
	// WAL before exiting, so a routine restart loses nothing.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case sig := <-sigc:
		log.Printf("folderserverd: %v: shutting down", sig)
		l.Close()
	case err := <-done:
		log.Fatalf("folderserverd: %v", err)
	}
	if debug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := debug.Shutdown(ctx); err != nil {
			log.Printf("folderserverd: debug server: %v", err)
		}
		cancel()
	}
	srv.Close()
	log.Printf("folderserverd: folder state flushed; bye")
}
