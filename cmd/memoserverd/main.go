// Command memoserverd runs a standalone memo server over real TCP — the
// per-machine system service of §4.1/§4.4. Application launchers register
// ADFs with it over the wire protocol (wire.OpRegister); folder requests
// are served locally or forwarded to peer memo servers.
//
// In the paper the inetd daemon started memo servers on demand; here an
// operator (or a process manager) starts one per machine:
//
//	memoserverd -host glen-ellyn -listen :7440
//
// The -host name must match the HOSTS entry that applications' ADFs use for
// this machine, and -peer maps remote host names to their TCP addresses
// (the simulation uses logical names; TCP needs real addresses).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/memoserver"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/threadcache"
	"repro/internal/transport"
)

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// peerMap resolves logical host names to TCP addresses.
type peerMap map[string]string

func (p peerMap) String() string {
	parts := make([]string, 0, len(p))
	for k, v := range p {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (p peerMap) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want host=addr, got %q", s)
	}
	p[k] = v
	return nil
}

func main() {
	host := flag.String("host", "", "this machine's logical host name (as in ADFs)")
	listen := flag.String("listen", ":7440", "TCP listen address")
	peers := peerMap{}
	flag.Var(peers, "peer", "logical-host=tcp-addr mapping (repeatable)")
	noCache := flag.Bool("no-thread-cache", false, "disable thread caching (E1 ablation)")
	batchMax := flag.Int("batch-max", 0, "max requests coalesced per rpc batch frame (0 = default 64; 1 disables batching)")
	batchBytes := flag.Int("batch-bytes", 0, "max encoded bytes per rpc batch frame (0 = default 64KiB)")
	batchLinger := flag.Duration("batch-linger", 0, "upper bound a queued request waits for batch companions (0 = default 100µs)")
	heartbeat := flag.Duration("heartbeat-interval", 5*time.Second, "probe receive-quiet links this often; a peer silent for 2x this is declared dead (0 disables heartbeats)")
	idleTimeout := flag.Duration("idle-timeout", 15*time.Second, "close connections silent for this long (0 = never; defaults off when heartbeats are disabled, since blocking waits legitimately silence a connection)")
	redialMin := flag.Duration("redial-backoff", 50*time.Millisecond, "first re-dial delay after a peer link dies; doubles per failure up to the transport cap, with jitter")
	retries := flag.Int("link-retries", 2, "transparent retries of safely-retriable forwarded calls after a link failure")
	dataDir := flag.String("data-dir", "", "directory for folder-server durability (per-shard WAL + snapshots); empty keeps folders in memory only")
	fsync := flag.String("fsync", "batch", "WAL sync policy: batch (group commit), always (fsync per record), never (trust the OS cache)")
	snapshotEvery := flag.Int("snapshot-every", 0, "records between WAL snapshot+truncate cycles (0 = default, negative = never)")
	debugAddr := flag.String("debug-addr", "", "serve the debug endpoints (/metrics, /statusz, /slowz, /debug/pprof/) on this address (e.g. localhost:6060); empty disables them")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -debug-addr")
	slowThreshold := flag.Duration("slow-request-threshold", 0, "record requests whose dispatch takes at least this long in the slow-request log (/slowz); 0 disables span timing")
	traceSample := flag.Float64("trace-sample", 0, "span-sample this fraction of entry requests (1 = all, 0.01 = every 100th, 0 = none); sampled requests collect per-layer spans at every hop into /tracez. Requests another node sampled are always traced through")
	traceRing := flag.Int("trace-ring", 0, "sampled traces kept in the /tracez ring (0 = default 256)")
	readyFile := flag.String("ready-file", "", "after the listener is bound, atomically write the actual TCP address here (supports -listen :0; harnesses poll this file for readiness). With -debug-addr a second line `debug <addr>` names the debug endpoint")
	flag.Parse()

	if *host == "" {
		fmt.Fprintln(os.Stderr, "memoserverd: -host is required")
		os.Exit(2)
	}
	if *debugAddr == "" {
		*debugAddr = *pprofAddr
	}
	if !flagSet("idle-timeout") {
		// Keep the read deadline consistent with the probe rate: without
		// heartbeats a blocked folder wait keeps a healthy connection
		// silent (so no deadline at all), and with a long heartbeat
		// interval the deadline must stretch with it or it fires before
		// the first probe.
		if *heartbeat <= 0 {
			*idleTimeout = 0
		} else if 3**heartbeat > *idleTimeout {
			*idleTimeout = 3 * *heartbeat
		}
	} else if *heartbeat > 0 && *idleTimeout > 0 && *idleTimeout < 2**heartbeat {
		log.Printf("memoserverd: warning: -idle-timeout %v < 2x -heartbeat-interval %v; healthy silent connections may be killed before their first probe", *idleTimeout, *heartbeat)
	}

	syncMode, err := durable.ParseSyncMode(*fsync)
	if err != nil {
		log.Fatalf("memoserverd: %v", err)
	}

	tcp := transport.NewTCP()
	tcp.IdleTimeout = *idleTimeout
	mt := &mappedTransport{inner: tcp, listen: *listen, peers: peers}
	node := memoserver.NewWithDialer(*host, mt,
		memoserver.Config{
			Cache:       threadcache.Config{Disable: *noCache},
			FolderCache: threadcache.Config{Disable: *noCache},
			Batch:       rpc.Policy{MaxCount: *batchMax, MaxBytes: *batchBytes, Linger: *batchLinger},
			Resilience: rpc.Resilience{
				Heartbeat: *heartbeat,
				Redial:    transport.Backoff{Min: *redialMin},
				Retries:   *retries,
			},
			DataDir:              *dataDir,
			Durable:              durable.Config{Sync: syncMode, SnapshotEvery: *snapshotEvery},
			SlowRequestThreshold: *slowThreshold,
			TraceSample:          *traceSample,
			TraceRingSize:        *traceRing,
		})
	node.RegisterMetrics(obs.Default)
	if sl := node.SlowLog(); sl != nil {
		// Besides the /slowz ring, mirror each slow span into the daemon log
		// so operators see them without polling.
		sl.SetEmit(func(e obs.SlowEntry) {
			log.Printf("memoserverd: slow request trace=%x hop=%d op=%s folder=%d at=%s took=%v",
				e.Trace, e.Hop, e.Op, e.Folder, e.Where, e.Dur)
		})
	}
	if err := node.Start(); err != nil {
		log.Fatalf("memoserverd: %v", err)
	}
	log.Printf("memoserverd: host %s listening on %s", *host, mt.boundAddr)

	// The debug server unifies /metrics, /statusz, /slowz, /tracez, and pprof
	// on one listener: off by default, and when enabled, bind a loopback
	// address unless you mean to expose the profiler. Started before the
	// ready file is published so the file can carry the debug address too
	// (`memo top` and the e2e forensics scraper read it from there).
	var debug *obs.DebugServer
	if *debugAddr != "" {
		debug = obs.NewDebugServer(*debugAddr, []*obs.Registry{obs.Default}, node.SlowLog(),
			obs.WithTraceRing(node.Tracer().Ring()),
			obs.WithLinkStatus(func() any { return node.LinkStats() }))
		if err := debug.Start(); err != nil {
			log.Fatalf("memoserverd: debug server: %v", err)
		}
		log.Printf("memoserverd: debug endpoints on %s", debug.Addr())
	}
	if *readyFile != "" {
		ready := mt.boundAddr + "\n"
		if debug != nil {
			ready += "debug " + debug.Addr() + "\n"
		}
		if err := writeReadyFile(*readyFile, ready); err != nil {
			log.Fatalf("memoserverd: %v", err)
		}
	}

	// Serve until SIGINT/SIGTERM, then shut down in order: stop accepting,
	// drain links, flush and close every folder server's WAL. A durable
	// deployment relies on this to make a routine restart lose nothing.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	log.Printf("memoserverd: %v: shutting down", sig)
	if debug != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := debug.Shutdown(ctx); err != nil {
			log.Printf("memoserverd: debug server: %v", err)
		}
		cancel()
	}
	node.Close()
	log.Printf("memoserverd: folder state flushed; bye")
}

// writeReadyFile publishes the daemon's readiness info atomically: write to
// a temp file, then rename, so a polling harness never reads a torn write.
// The first line is the bound TCP address; optional further lines carry
// `key value` extras (currently `debug <addr>`).
func writeReadyFile(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// mappedTransport lets the memo server use logical addresses ("host/memo")
// over TCP by mapping the host part through the peer table.
type mappedTransport struct {
	inner  *transport.TCP
	listen string
	peers  peerMap

	// boundAddr is the actual TCP address after Listen — with "-listen :0"
	// this is the only place the chosen port is visible.
	boundAddr string
}

func (t *mappedTransport) Listen(addr string) (transport.Listener, error) {
	// The node asks to listen on "host/memo"; bind the configured TCP port.
	l, err := t.inner.Listen(t.listen)
	if err != nil {
		return nil, err
	}
	t.boundAddr = l.Addr()
	return l, nil
}

func (t *mappedTransport) Dial(addr string) (transport.Conn, error) {
	host := transport.HostOf(addr)
	real, ok := t.peers[host]
	if !ok {
		return nil, fmt.Errorf("memoserverd: no -peer mapping for host %q", host)
	}
	return t.inner.Dial(real)
}

func (t *mappedTransport) Name() string { return "tcp-mapped" }
