//go:build race

package e2e

func init() { raceBuilt = true }
