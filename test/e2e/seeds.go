package e2e

import (
	"encoding/json"
	"fmt"
	"os"
)

// Seed is one regression corpus entry: a (seed, action-count) pair that
// once exposed a bug. The corpus is replayed before fresh seeds on every
// run, so each found bug stays found.
type Seed struct {
	Seed    int64  `json:"seed"`
	Actions int    `json:"actions"`
	Note    string `json:"note,omitempty"`
}

// LoadSeeds reads the regression corpus. A missing file is an empty
// corpus, not an error.
func LoadSeeds(path string) ([]Seed, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var seeds []Seed
	if err := json.Unmarshal(data, &seeds); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return seeds, nil
}

// AppendSeed adds a newly-found failing seed to the corpus file,
// de-duplicating exact (seed, actions) repeats.
func AppendSeed(path string, s Seed) error {
	seeds, err := LoadSeeds(path)
	if err != nil {
		return err
	}
	for _, have := range seeds {
		if have.Seed == s.Seed && have.Actions == s.Actions {
			return nil
		}
	}
	seeds = append(seeds, s)
	data, err := json.MarshalIndent(seeds, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// MinimizePrefix binary-searches the smallest action-count prefix of a
// failing trace that still fails, probing at most maxProbes times (each
// probe is a full cluster run, so the budget matters). fails(n) must
// report whether the n-action prefix reproduces the failure; n itself is
// known-failing and is returned if the budget runs out before the search
// narrows further.
func MinimizePrefix(n, maxProbes int, fails func(n int) bool) int {
	lo, hi := 1, n // invariant: hi fails; lo-1 (when probed) passed
	for probes := 0; lo < hi && probes < maxProbes; probes++ {
		mid := lo + (hi-lo)/2
		if fails(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}
