package e2e

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/memoserver"
	"repro/internal/placement"
	"repro/internal/routing"
	"repro/internal/rpc"
	"repro/internal/symbol"
	"repro/internal/transport"
)

// The fixed cluster shape every run uses: three memo servers in a full
// mesh, one folder server per host. Keys are spread over a small fixed
// keyspace so takes and puts collide often.
const (
	hostCount = 3
	keyCount  = 8
	pairCount = hostCount * (hostCount - 1) // directed inter-node links
)

var hostNames = [hostCount]string{"a", "b", "c"}

const chaosADF = `APP chaos
HOSTS
a 1 sun4 1
b 1 sun4 1
c 1 sun4 1
FOLDERS
0 a
1 b
2 c
PROCESSES
0 boss a
1 worker b
2 worker c
PPC
a <-> b 1
a <-> c 1
b <-> c 1
`

// chaosKey maps a trace key index to the shared keyspace; sentinelKey is
// outside it, reserved for the settle phase's watcher-convergence probes.
func chaosKey(i int) symbol.Key    { return symbol.K(symbol.Symbol(100 + i)) }
func sentinelKey(i int) symbol.Key { return symbol.K(symbol.Symbol(900 + i)) }
func pairOf(p int) (from, to int) { // directed pair index -> host indices
	from = p / (hostCount - 1)
	to = p % (hostCount - 1)
	if to >= from {
		to++
	}
	return from, to
}

// Binaries are the black-box artifacts under test.
type Binaries struct {
	Memoserverd   string
	Folderserverd string
	Memo          string
}

// raceBuilt reports whether the harness itself was built with -race; the
// race-tagged init in race.go flips it.
var raceBuilt = false

// BuildBinaries compiles the three real commands into dir. The harness
// only ever talks to these binaries over TCP, argv, and exit codes. When
// the harness itself is race-built, so are the daemons, putting the race
// detector inside the servers for the whole chaos run.
func BuildBinaries(dir string) (Binaries, error) {
	b := Binaries{
		Memoserverd:   filepath.Join(dir, "memoserverd"),
		Folderserverd: filepath.Join(dir, "folderserverd"),
		Memo:          filepath.Join(dir, "memo"),
	}
	for out, pkg := range map[string]string{
		b.Memoserverd:   "repro/cmd/memoserverd",
		b.Folderserverd: "repro/cmd/folderserverd",
		b.Memo:          "repro/cmd/memo",
	} {
		args := []string{"build", "-o", out}
		if raceBuilt {
			args = append(args, "-race")
		}
		cmd := exec.Command("go", append(args, pkg)...)
		if msg, err := cmd.CombinedOutput(); err != nil {
			return b, fmt.Errorf("build %s: %v\n%s", pkg, err, msg)
		}
	}
	return b, nil
}

// reservePort grabs a free TCP port and releases it for a daemon to bind.
// The tiny reuse race is acceptable in a test harness.
func reservePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// Daemon is one memoserverd process plus everything needed to kill and
// resurrect it: fixed listen address, data directory, argv.
type Daemon struct {
	Host      string
	Listen    string
	Debug     string
	DataDir   string
	ReadyFile string
	LogPath   string

	bin  string
	args []string
	cmd  *exec.Cmd
	logf *os.File
}

// Start launches the daemon and waits for its ready file.
func (d *Daemon) Start() error {
	if err := os.Remove(d.ReadyFile); err != nil && !os.IsNotExist(err) {
		return err
	}
	lf, err := os.OpenFile(d.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(d.bin, d.args...)
	cmd.Stdout = lf
	cmd.Stderr = lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		return err
	}
	d.cmd = cmd
	d.logf = lf
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(d.ReadyFile); err == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon %s: ready file %s never appeared (log: %s)", d.Host, d.ReadyFile, d.LogPath)
}

// Kill SIGKILLs the daemon — the crash the WAL exists for.
func (d *Daemon) Kill() {
	if d.cmd == nil {
		return
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	d.logf.Close()
	d.cmd = nil
}

// Term asks for a clean shutdown and verifies it: exit status 0 and the
// "bye" line that only the flushed-WAL path logs.
func (d *Daemon) Term() error {
	if d.cmd == nil {
		return fmt.Errorf("daemon %s not running", d.Host)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		d.logf.Close()
		d.cmd = nil
		if err != nil {
			// Exit 66 is the race detector; whatever it was, the log is
			// about to vanish with the run's TempDir, so quote its tail.
			return fmt.Errorf("daemon %s: unclean exit: %v\n%s", d.Host, err, logTail(d.LogPath, 60))
		}
	case <-time.After(15 * time.Second):
		d.Kill()
		return fmt.Errorf("daemon %s: SIGTERM drain hung", d.Host)
	}
	log, err := os.ReadFile(d.LogPath)
	if err != nil {
		return err
	}
	if !strings.Contains(string(log), "bye") {
		return fmt.Errorf("daemon %s: no clean-shutdown marker in log %s", d.Host, d.LogPath)
	}
	return nil
}

// Cluster is the live system under test.
type Cluster struct {
	Dir     string
	Bins    Binaries
	ADFPath string
	ADFText string
	File    *adf.File
	Place   *placement.Map
	Nodes   [hostCount]*Daemon
	Proxies [pairCount]*Proxy
	logff   func(string, ...any)
}

// NewCluster reserves ports, wires every directed peer link through its
// own proxy, writes the ADF, and prepares (but does not start) the nodes.
func NewCluster(dir string, bins Binaries, logff func(string, ...any)) (*Cluster, error) {
	c := &Cluster{Dir: dir, Bins: bins, ADFText: chaosADF, logff: logff}
	f, err := adf.Parse(chaosADF)
	if err != nil {
		return nil, err
	}
	if err := adf.Validate(f); err != nil {
		return nil, err
	}
	g, err := f.Graph()
	if err != nil {
		return nil, err
	}
	c.Place, err = placement.New(f, routing.Build(g), placement.Options{})
	if err != nil {
		return nil, err
	}
	c.File = f
	c.ADFPath = filepath.Join(dir, "chaos.adf")
	if err := os.WriteFile(c.ADFPath, []byte(chaosADF), 0o644); err != nil {
		return nil, err
	}

	var listens [hostCount]string
	for i := range listens {
		if listens[i], err = reservePort(); err != nil {
			return nil, err
		}
	}
	for p := range c.Proxies {
		addr, err := reservePort()
		if err != nil {
			return nil, err
		}
		_, to := pairOf(p)
		if c.Proxies[p], err = NewProxy(addr, listens[to]); err != nil {
			return nil, err
		}
	}
	for i := range c.Nodes {
		debug, err := reservePort()
		if err != nil {
			return nil, err
		}
		host := hostNames[i]
		d := &Daemon{
			Host:      host,
			Listen:    listens[i],
			Debug:     debug,
			DataDir:   filepath.Join(dir, "data-"+host),
			ReadyFile: filepath.Join(dir, host+".ready"),
			LogPath:   filepath.Join(dir, host+".log"),
			bin:       bins.Memoserverd,
		}
		d.args = []string{
			"-host", host,
			"-listen", d.Listen,
			"-debug-addr", d.Debug,
			"-data-dir", d.DataDir,
			"-ready-file", d.ReadyFile,
			// Aggressive snapshots so chaos runs cross the snapshot+truncate
			// and generation-rollover paths, not just plain appends.
			"-snapshot-every", "64",
			// Fast link timings: seconds of chaos, not minutes.
			"-heartbeat-interval", "250ms",
			"-redial-backoff", "20ms",
			"-link-retries", "2",
			// Sample every request: a failed run's forensics bundle gets the
			// span trees of whatever the oracle is about to complain about.
			"-trace-sample", "1",
		}
		for p := range c.Proxies {
			from, to := pairOf(p)
			if from == i {
				d.args = append(d.args, "-peer", hostNames[to]+"="+c.Proxies[p].Addr())
			}
		}
		c.Nodes[i] = d
	}
	return c, nil
}

func (c *Cluster) logf(format string, args ...any) {
	if c.logff != nil {
		c.logff(format, args...)
	}
}

// StartAll boots every node and registers the application with each.
func (c *Cluster) StartAll() error {
	for _, d := range c.Nodes {
		if err := d.Start(); err != nil {
			return err
		}
	}
	for i := range c.Nodes {
		if err := c.registerLib(i); err != nil {
			return err
		}
	}
	return nil
}

// registerLib registers the ADF with node i through the client library.
func (c *Cluster) registerLib(i int) error {
	cl, err := c.rawClient(i)
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.Register(c.ADFText)
}

// RegisterCLI re-registers the ADF with node i through the memo binary —
// the path an operator uses after restarting a daemon.
func (c *Cluster) RegisterCLI(i int) error {
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		out, err := c.CLI(i, "register")
		if err == nil && out.OK {
			return nil
		}
		lastErr = fmt.Errorf("register attempt %d: %v (%s)", attempt, err, out.Error)
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

// rawClient dials node i's wire endpoint directly (no placement, no core).
func (c *Cluster) rawClient(i int) (*memoserver.Client, error) {
	tcp := transport.NewTCP()
	addr := c.Nodes[i].Listen
	dial := func(srcHost, logical string) (transport.Conn, error) { return tcp.Dial(addr) }
	return memoserver.DialClientResilient(dial, hostNames[i], c.File.App, rpc.Policy{},
		rpc.Resilience{Heartbeat: rpc.DefaultHeartbeat, Retries: 2})
}

// Memo opens a full client-library handle entering the cluster at node i —
// the same construction cmd/memo's op mode and cluster.NewMemo use, so key
// placement agrees with every other participant.
func (c *Cluster) Memo(i int) (*core.Memo, error) {
	client, err := c.rawClient(i)
	if err != nil {
		return nil, err
	}
	h, _ := c.File.HostByName(hostNames[i])
	m, err := core.New(core.Config{
		App:      c.File.App,
		Host:     hostNames[i],
		Domain:   cluster.DomainFor(h.Arch),
		Registry: symbol.NewRegistry(),
		Place:    c.Place,
		Client:   client,
	})
	if err != nil {
		client.Close()
		return nil, err
	}
	return m, nil
}

// CLIResult is one parsed -json line from the memo binary.
type CLIResult struct {
	OK    bool   `json:"ok"`
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value"`
	Empty bool   `json:"empty"`
	Error string `json:"error"`
	Code  int    `json:"-"`
}

// Restart resurrects a killed node from its data directory and
// re-registers the app via the CLI.
func (c *Cluster) Restart(i int) error {
	if err := c.Nodes[i].Start(); err != nil {
		return err
	}
	return c.RegisterCLI(i)
}

// Shutdown SIGTERMs every running node and verifies each drained cleanly.
func (c *Cluster) Shutdown() error {
	var firstErr error
	for _, d := range c.Nodes {
		if d.cmd == nil {
			continue
		}
		if err := d.Term(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, p := range c.Proxies {
		p.Close()
	}
	return firstErr
}

// Abort hard-kills everything (cleanup path for failed runs).
func (c *Cluster) Abort() {
	for _, d := range c.Nodes {
		if d != nil && d.cmd != nil {
			d.Kill()
		}
	}
	for _, p := range c.Proxies {
		if p != nil {
			p.Close()
		}
	}
}

// Forensics scrapes every node's debug endpoints into dir — called on a
// failed run before the cluster is torn down, so the artifact bundle holds
// the metrics, link health, slow-request rings, and span trees of the run
// the oracle rejected. Per-node scrape failures are recorded inside the
// bundle instead of aborting it: a node may legitimately be dead at failure
// time.
func (c *Cluster) Forensics(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range c.Nodes {
		for _, ep := range []struct{ path, file string }{
			{"/metrics", d.Host + "-metrics.txt"},
			{"/statusz", d.Host + "-statusz.json"},
			{"/slowz", d.Host + "-slowz.json"},
			{"/tracez", d.Host + "-tracez.json"},
		} {
			body, err := scrapeBody(d.Debug, ep.path)
			if err != nil {
				body = []byte("scrape failed: " + err.Error() + "\n")
			}
			if werr := os.WriteFile(filepath.Join(dir, ep.file), body, 0o644); werr != nil {
				return werr
			}
		}
	}
	return nil
}

// logTail returns the last n lines of a daemon log for error messages —
// the run directory is a TempDir, so this is the only copy that survives.
func logTail(path string, n int) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return "(log unreadable: " + err.Error() + ")"
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

// scrapeBody fetches one debug endpoint with a short timeout (forensics run
// while nodes may be dead; a hang here must not stall the teardown).
func scrapeBody(debugAddr, path string) ([]byte, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + debugAddr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// SumGauge scrapes /metrics on every node and sums the given series
// (across all label sets).
func (c *Cluster) SumGauge(series string) (int64, error) {
	var sum int64
	for _, d := range c.Nodes {
		v, err := scrapeSum(d.Debug, series)
		if err != nil {
			return 0, fmt.Errorf("node %s: %w", d.Host, err)
		}
		sum += v
	}
	return sum, nil
}

// scrapeSum fetches /metrics from one debug address and sums every sample
// of one series.
func scrapeSum(debugAddr, series string) (int64, error) {
	resp, err := http.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var sum int64
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		rest := line[len(series):]
		// Exact series match: next char is '{' (labels) or ' ' (bare).
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		f, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		sum += int64(f)
	}
	return sum, nil
}
