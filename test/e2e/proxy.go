// Package e2e is the black-box chaos harness: it compiles the real
// memoserverd/folderserverd/memo binaries, boots a multi-node cluster over
// TCP with durability on, drives it with a seeded weighted action mix
// through both the client library and the CLI, and checks a global
// exactly-once/convergence oracle at the end of every run. See DESIGN.md
// §11 for the architecture and the invariants.
package e2e

import (
	"io"
	"net"
	"sync"
)

// Proxy is a TCP forwarder standing in for one directed inter-node link
// (the -peer mapping of one daemon points at it instead of at the real
// listener). Sever drops every live connection and refuses new ones —
// dial still succeeds at the TCP level and then dies, which is the
// messiest failure mode for the rpc layer: the peer looks up, then the
// first frame write faults. Heal restores forwarding.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	severed bool
	conns   map[net.Conn]struct{}
	closed  bool
}

// NewProxy starts a proxy on addr forwarding to target.
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address, for daemons' -peer flags.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.severed || p.closed {
			p.mu.Unlock()
			c.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		go p.pipe(c)
	}
}

func (p *Proxy) pipe(c net.Conn) {
	defer p.drop(c)
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.severed || p.closed {
		p.mu.Unlock()
		up.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer p.drop(up)
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(up, c); done <- struct{}{} }()
	go func() { _, _ = io.Copy(c, up); done <- struct{}{} }()
	// Either direction closing tears down both: half-open links are not a
	// failure mode this harness models.
	<-done
}

func (p *Proxy) drop(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// Sever cuts the link: every live connection dies now, new ones are
// accepted and immediately closed.
func (p *Proxy) Sever() {
	p.mu.Lock()
	p.severed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// Heal restores forwarding for new connections (the daemons' redialers
// bring the rpc links back).
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.severed = false
	p.mu.Unlock()
}

// Severed reports whether the link is currently cut.
func (p *Proxy) Severed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.severed
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	p.ln.Close()
}
