package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

// opTimeout bounds every blocking client call the runner issues. A timed-
// out blocking take is *uncertain*: its server-side waiter may still
// consume a later deposit, which the ledger accounts for.
const opTimeout = 2 * time.Second

// CLI runs one memo-binary subcommand against node host and parses its
// -json result line. The returned error covers only harness-level failures
// (binary missing, no parsable output); operation failures come back in
// the CLIResult with OK=false and the exit code.
func (c *Cluster) CLI(host int, op string, extra ...string) (CLIResult, error) {
	args := []string{op, "-adf", c.ADFPath, "-addr", c.Nodes[host].Listen,
		"-host", hostNames[host], "-json"}
	args = append(args, extra...)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, c.Bins.Memo, args...).Output()
	var res CLIResult
	if ee, ok := err.(*exec.ExitError); ok {
		res.Code = ee.ExitCode()
		err = nil
	} else if err != nil {
		return res, fmt.Errorf("memo %s: %w", op, err)
	}
	line := ""
	for _, l := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if strings.HasPrefix(l, "{") {
			line = l
		}
	}
	if line == "" {
		return res, fmt.Errorf("memo %s: no -json result line (exit %d)", op, res.Code)
	}
	if jerr := json.Unmarshal([]byte(line), &res); jerr != nil {
		return res, fmt.Errorf("memo %s: bad -json line %q: %v", op, line, jerr)
	}
	return res, nil
}

// runner carries one chaos run's live state.
type runner struct {
	c     *Cluster
	led   *Ledger
	memos [hostCount]*core.Memo
	seed  int64

	wg  sync.WaitGroup
	sem chan struct{} // bounds concurrently-parked blocking ops

	severed []int // FIFO of severed pair indices

	pumped      map[string]map[string]bool // target host -> allowed images
	ackedPump   map[string]bool            // target host has >= 1 certain image
	pumpCertain int
	pumpTotal   int
}

// RunChaos executes one full seeded chaos run: boot, trace, settle, drain,
// oracle, clean shutdown. A nil return means the oracle held and every
// daemon drained cleanly.
func RunChaos(dir string, bins Binaries, seed int64, n int, logf func(string, ...any)) (err error) {
	c, err := NewCluster(dir, bins, logf)
	if err != nil {
		return err
	}
	clean := false
	defer func() {
		if !clean {
			// Scrape the forensics bundle before tearing the cluster down:
			// the bundle lands in the package directory next to
			// regression_seeds.json (the run's own dir is a TempDir the test
			// framework deletes). A minimization sweep rewrites it per
			// failing probe, so it ends up describing the minimal failure.
			fdir := fmt.Sprintf("forensics-seed%d", seed)
			if ferr := c.Forensics(fdir); ferr != nil {
				c.logf("forensics scrape: %v", ferr)
			} else {
				c.logf("forensics bundle (metrics, statusz, slowz, tracez per node) written to %s", fdir)
			}
			c.Abort()
		}
	}()
	if err := c.StartAll(); err != nil {
		return err
	}
	r := &runner{
		c: c, led: NewLedger(), seed: seed,
		sem:       make(chan struct{}, 16),
		pumped:    make(map[string]map[string]bool),
		ackedPump: make(map[string]bool),
	}
	for i := range r.memos {
		m, err := c.Memo(i)
		if err != nil {
			return err
		}
		defer m.Close()
		r.memos[i] = m
	}

	acts := GenActions(seed, n, hostCount, keyCount, pairCount)
	for i, act := range acts {
		if err := r.step(i, act); err != nil {
			return fmt.Errorf("action %d (%s): %w", i, act.Type, err)
		}
	}

	if err := r.settle(); err != nil {
		return err
	}
	if err := r.drainAndCheck(); err != nil {
		return err
	}
	clean = true
	if err := c.Shutdown(); err != nil {
		return fmt.Errorf("clean shutdown: %w", err)
	}
	c.logf("run seed=%d n=%d: oracle held (%s)", seed, n, r.led.Stats())
	return nil
}

func (r *runner) value(i int) string { return fmt.Sprintf("v%dx%d", r.seed, i) }

func asStr(v transferable.Value) string {
	if s, ok := transferable.AsString(v); ok {
		return s
	}
	return fmt.Sprint(transferable.ToGo(v))
}

// async runs one blocking client op in the background with a bounded
// cancel. Outcomes flow into the ledger from the goroutine.
func (r *runner) async(op func(cancel <-chan struct{})) {
	r.sem <- struct{}{}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() { <-r.sem }()
		cancel := make(chan struct{})
		t := time.AfterFunc(opTimeout, func() { close(cancel) })
		defer t.Stop()
		op(cancel)
	}()
}

// step executes one trace action. Only harness breakage returns an error;
// operation failures are ledger events, not run failures.
func (r *runner) step(i int, act Action) error {
	m := r.memos[act.Host]
	key := chaosKey(act.Key)
	val := r.value(i)
	switch act.Type {
	case ActPut:
		r.led.Intend(val)
		if err := m.Put(key, transferable.String(val)); err != nil {
			r.led.UncertainPut(val)
		} else {
			r.led.AckPut(val)
		}

	case ActPutCLI:
		r.led.Intend(val)
		out, err := r.c.CLI(act.Host, "put", "-key", key.Canon(), "-value", val)
		if err != nil {
			return err
		}
		if out.OK {
			r.led.AckPut(val)
		} else {
			r.led.UncertainPut(val)
		}

	case ActPutDelayed:
		r.led.Intend(val)
		if err := m.PutDelayed(key, chaosKey(act.Key2), transferable.String(val)); err != nil {
			r.led.UncertainPut(val)
		} else {
			r.led.AckPut(val)
		}

	case ActGet:
		r.async(func(cancel <-chan struct{}) {
			v, err := m.GetCancel(key, cancel)
			if err != nil {
				r.led.UncertainTake()
				return
			}
			r.led.Consume(asStr(v))
		})

	case ActGetSkip:
		v, ok, err := m.GetSkip(key)
		if err != nil {
			r.led.UncertainTake()
		} else if ok {
			r.led.Consume(asStr(v))
		}

	case ActGetSkipCLI:
		out, err := r.c.CLI(act.Host, "get-skip", "-key", key.Canon())
		if err != nil {
			return err
		}
		switch {
		case !out.OK:
			r.led.UncertainTake()
		case !out.Empty:
			r.led.Consume(out.Value)
		}

	case ActAltTake:
		keys := make([]symbol.Key, len(act.Keys))
		for j, k := range act.Keys {
			keys[j] = chaosKey(k)
		}
		r.async(func(cancel <-chan struct{}) {
			_, v, err := m.GetAltCancel(cancel, keys...)
			if err != nil {
				r.led.UncertainTake()
				return
			}
			r.led.Consume(asStr(v))
		})

	case ActAltSkip:
		keys := make([]symbol.Key, len(act.Keys))
		for j, k := range act.Keys {
			keys[j] = chaosKey(k)
		}
		_, v, ok, err := m.GetAltSkip(keys...)
		switch {
		case err != nil:
			r.led.UncertainTake()
		case ok:
			r.led.Consume(asStr(v))
		}

	case ActWatch:
		r.async(func(cancel <-chan struct{}) {
			v, err := m.GetCopyCancel(key, cancel)
			if err != nil {
				return // observation failed; nothing to account
			}
			r.led.Copy(asStr(v))
		})

	case ActPump:
		r.pump(m, hostNames[act.Node], "img-"+val)

	case ActKill:
		r.c.logf("action %d: SIGKILL node %s", i, hostNames[act.Node])
		r.c.Nodes[act.Node].Kill()
		if err := r.c.Restart(act.Node); err != nil {
			return fmt.Errorf("restart node %s: %w", hostNames[act.Node], err)
		}

	case ActSever:
		if !r.c.Proxies[act.Pair].Severed() {
			from, to := pairOf(act.Pair)
			r.c.logf("action %d: sever link %s->%s", i, hostNames[from], hostNames[to])
			r.c.Proxies[act.Pair].Sever()
			r.severed = append(r.severed, act.Pair)
		}

	case ActHeal:
		if len(r.severed) > 0 {
			p := r.severed[0]
			r.severed = r.severed[1:]
			from, to := pairOf(p)
			r.c.logf("action %d: heal link %s->%s", i, hostNames[from], hostNames[to])
			r.c.Proxies[p].Heal()
		}
	}
	return nil
}

// pump ships a program image and, when the target provably holds at least
// one image, fetches one back and checks it against the set of images that
// may legitimately be there. Program folders are append-only multisets, so
// any previously-shipped (certain or uncertain) image is a valid answer.
func (r *runner) pump(m *core.Memo, target, image string) {
	const dir = "w"
	if r.pumped[target] == nil {
		r.pumped[target] = make(map[string]bool)
	}
	r.pumpTotal++
	err := m.PumpProgram(target, dir, []byte(image))
	r.pumped[target][image] = true
	if err == nil {
		r.ackedPump[target] = true
		r.pumpCertain++
	}
	if !r.ackedPump[target] {
		return // fetch could block forever on an empty program folder
	}
	blob, err := m.FetchProgram(target, dir)
	if err != nil {
		return // link trouble; fetch is non-destructive, nothing to account
	}
	if !r.pumped[target][string(blob)] {
		r.led.violate(fmt.Sprintf("fetch from %s returned image %q that was never pumped", target, blob))
	}
}

// settle ends the chaos phase: every link healed, every node answering,
// every parked blocking op resolved or timed out, and a watcher-
// convergence probe on keys no chaos action ever touched.
func (r *runner) settle() error {
	for _, p := range r.severed {
		r.c.Proxies[p].Heal()
	}
	r.severed = nil
	r.wg.Wait()

	for i := range r.c.Nodes {
		ok := false
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if out, err := r.c.CLI(i, "ping"); err == nil && out.OK {
				ok = true
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if !ok {
			return fmt.Errorf("settle: node %s never answered ping", hostNames[i])
		}
	}

	// Watcher convergence: a watcher parked on an untouched key before the
	// deposit must see the deposit, across entry nodes — i.e. the watch/
	// notify path still works after the chaos.
	for s := 0; s < 2; s++ {
		key := sentinelKey(s)
		want := fmt.Sprintf("sentinel%dx%d", r.seed, s)
		watchHost, putHost := (s+1)%hostCount, s%hostCount
		got := make(chan string, 1)
		errc := make(chan error, 1)
		go func() {
			cancel := make(chan struct{})
			t := time.AfterFunc(10*time.Second, func() { close(cancel) })
			defer t.Stop()
			v, err := r.memos[watchHost].GetCopyCancel(key, cancel)
			if err != nil {
				errc <- err
				return
			}
			got <- asStr(v)
		}()
		time.Sleep(50 * time.Millisecond) // let the watcher park
		r.led.Intend(want)
		if err := r.memos[putHost].Put(key, transferable.String(want)); err != nil {
			return fmt.Errorf("settle: sentinel put: %w", err)
		}
		r.led.AckPut(want)
		select {
		case v := <-got:
			if v != want {
				r.led.violate(fmt.Sprintf("watcher on %v converged to %q, want %q", key, v, want))
			}
		case err := <-errc:
			r.led.violate(fmt.Sprintf("watcher on %v never converged: %v", key, err))
		}
	}
	return nil
}

// drainAndCheck empties the cluster through get_skip sweeps (planting
// trigger deposits while hidden delayed values remain), then audits the
// ledger and the post-drain /metrics balance.
func (r *runner) drainAndCheck() error {
	m := r.memos[0]
	sweep := func(key symbol.Key) (int, error) {
		n := 0
		for {
			v, ok, err := m.GetSkip(key)
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
			r.led.Consume(asStr(v))
			n++
		}
	}
	converged := false
	for round := 0; round < 40 && !converged; round++ {
		drained := 0
		for k := 0; k < keyCount; k++ {
			n, err := sweep(chaosKey(k))
			drained += n
			if err != nil {
				return fmt.Errorf("drain sweep: %w", err)
			}
		}
		for s := 0; s < 2; s++ {
			n, err := sweep(sentinelKey(s))
			drained += n
			if err != nil {
				return fmt.Errorf("drain sweep: %w", err)
			}
		}
		hidden, err := r.c.SumGauge("folder_delayed_hidden")
		if err != nil {
			return fmt.Errorf("drain metrics: %w", err)
		}
		memos, err := r.c.SumGauge("folder_memos")
		if err != nil {
			return fmt.Errorf("drain metrics: %w", err)
		}
		// Convergence needs the folder gauges to agree with the sweep:
		// nothing visible (a released delayed value still in flight between
		// servers shows up here first and gets swept next round) and nothing
		// hidden. Program images live in the node's program store, not in
		// folders, so they never appear in folder_memos.
		if drained == 0 && hidden == 0 && memos == 0 {
			converged = true
			break
		}
		if hidden > 0 {
			// Deposit a trigger in every folder: an arriving memo releases
			// all delayed values hidden there.
			for k := 0; k < keyCount; k++ {
				tv := fmt.Sprintf("trig%dxr%dk%d", r.seed, round, k)
				r.led.Intend(tv)
				if err := m.Put(chaosKey(k), transferable.String(tv)); err != nil {
					return fmt.Errorf("drain trigger: %w", err)
				}
				r.led.AckPut(tv)
			}
		}
		time.Sleep(50 * time.Millisecond) // cross-server releases are async
	}
	if !converged {
		hidden, _ := r.c.SumGauge("folder_delayed_hidden")
		memos, _ := r.c.SumGauge("folder_memos")
		r.led.violate(fmt.Sprintf(
			"drain never converged after 40 sweeps: folder_memos=%d folder_delayed_hidden=%d",
			memos, hidden))
	}
	return r.led.Check()
}
