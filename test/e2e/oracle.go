package e2e

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Ledger is the harness-side account of every operation's outcome. Values
// are unique per deposit, so consumption is checkable by value alone:
//
//   - an acknowledged put (or put_delayed, or drain trigger) promises its
//     value exists exactly once until consumed;
//   - an operation that errored is *uncertain*: a put that may or may not
//     have landed (0-or-1), a take that may or may not have consumed one
//     value (0-or-1, possibly later — an abandoned blocking get leaves a
//     server-side waiter that can consume a future deposit);
//   - an acknowledged take observed value v consumes it.
//
// Violations recorded eagerly: double-consume (v observed twice) and
// phantom (v observed that no put ever deposited). Checked at the end:
// loss — an acked value never observed anywhere can only be explained by
// an uncertain take, so |missing| must be ≤ the uncertain-take count.
type Ledger struct {
	mu           sync.Mutex
	intended     map[string]bool
	acked        map[string]bool
	uncertainPut map[string]bool
	observed     map[string]int
	uncertTakes  int
	violations   []string
}

func NewLedger() *Ledger {
	return &Ledger{
		intended:     make(map[string]bool),
		acked:        make(map[string]bool),
		uncertainPut: make(map[string]bool),
		observed:     make(map[string]int),
	}
}

// Intend pre-registers a deposit's value before the operation is issued.
// The server applies a put before the client's ack arrives, so a parked
// watcher or taker can legitimately observe the value ahead of AckPut —
// the phantom check therefore keys on intent, not on acknowledgement.
func (l *Ledger) Intend(v string) {
	l.mu.Lock()
	l.intended[v] = true
	l.mu.Unlock()
}

// AckPut records a deposit the cluster acknowledged.
func (l *Ledger) AckPut(v string) {
	l.mu.Lock()
	l.intended[v] = true
	l.acked[v] = true
	l.mu.Unlock()
}

// UncertainPut records a deposit whose operation errored: it landed 0 or 1
// times.
func (l *Ledger) UncertainPut(v string) {
	l.mu.Lock()
	l.intended[v] = true
	l.uncertainPut[v] = true
	l.mu.Unlock()
}

// Consume records a value returned by an acknowledged destructive read
// (get, get_skip, alt_take, or the drain sweep).
func (l *Ledger) Consume(v string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed[v]++
	if l.observed[v] > 1 {
		l.violations = append(l.violations,
			fmt.Sprintf("double-consume: value %q returned by %d takes", v, l.observed[v]))
	}
	if !l.intended[v] {
		l.violations = append(l.violations,
			fmt.Sprintf("phantom: take returned value %q no put ever deposited", v))
	}
}

// UncertainTake records a destructive read whose operation errored or was
// abandoned: it consumed 0 or 1 values, possibly in the future.
func (l *Ledger) UncertainTake() {
	l.mu.Lock()
	l.uncertTakes++
	l.mu.Unlock()
}

// violate records a harness-detected invariant violation verbatim
// (convergence failures, metrics imbalance).
func (l *Ledger) violate(msg string) {
	l.mu.Lock()
	l.violations = append(l.violations, msg)
	l.mu.Unlock()
}

// Copy records a value observed by a non-destructive read (watch /
// get_copy): it must exist, but is not consumed.
func (l *Ledger) Copy(v string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.intended[v] {
		l.violations = append(l.violations,
			fmt.Sprintf("phantom: copy returned value %q no put ever deposited", v))
	}
}

// Stats summarizes the ledger for run logs.
func (l *Ledger) Stats() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("acked=%d uncertain-puts=%d observed=%d uncertain-takes=%d",
		len(l.acked), len(l.uncertainPut), len(l.observed), l.uncertTakes)
}

// Check returns every invariant violation, or nil if the run converged.
func (l *Ledger) Check() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	errs := append([]string(nil), l.violations...)
	var missing []string
	for v := range l.acked {
		if l.observed[v] == 0 {
			missing = append(missing, v)
		}
	}
	if len(missing) > l.uncertTakes {
		sort.Strings(missing)
		errs = append(errs, fmt.Sprintf(
			"loss: %d acked values never observed but only %d uncertain takes could have consumed them: %v",
			len(missing), l.uncertTakes, missing))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d violations:\n  %s", len(errs), strings.Join(errs, "\n  "))
}
