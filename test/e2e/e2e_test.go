package e2e

import (
	"fmt"
	"net"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/symbol"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The heavy black-box tests boot real daemons and take tens of seconds, so
// they run only when E2E=1 (scripts/e2e.sh sets it; plain `go test ./...`
// stays fast). The deterministic unit tests below always run.
func requireE2E(t *testing.T) {
	t.Helper()
	if os.Getenv("E2E") == "" {
		t.Skip("set E2E=1 (or run scripts/e2e.sh) for the black-box chaos harness")
	}
}

var (
	buildOnce sync.Once
	builtBins Binaries
	buildErr  error
	buildDir  string
)

func testBinaries(t *testing.T) Binaries {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "e2e-bin-")
		if buildErr != nil {
			return
		}
		builtBins, buildErr = BuildBinaries(buildDir)
	})
	if buildErr != nil {
		t.Fatalf("build binaries: %v", buildErr)
	}
	return builtBins
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

const seedCorpus = "regression_seeds.json"

// TestSmoke is the CI gate: one full seeded chaos run — ≥100 mixed actions
// including at least one SIGKILL/restart and one link sever/heal (the
// generator guarantees both) — that must pass the exactly-once/convergence
// oracle and shut down cleanly.
func TestSmoke(t *testing.T) {
	requireE2E(t)
	bins := testBinaries(t)
	seed := int64(1)
	if s := os.Getenv("E2E_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("E2E_SEED: %v", err)
		}
		seed = v
	}
	const n = 120
	if err := RunChaos(t.TempDir(), bins, seed, n, t.Logf); err != nil {
		reportFailure(t, bins, seed, n, err)
	}
}

// TestRegressionSeeds replays the corpus first-class: every seed that ever
// found a bug keeps hunting it on each run.
func TestRegressionSeeds(t *testing.T) {
	requireE2E(t)
	seeds, err := LoadSeeds(seedCorpus)
	if err != nil {
		t.Fatal(err)
	}
	bins := testBinaries(t)
	for _, s := range seeds {
		s := s
		t.Run(fmt.Sprintf("seed%d_n%d", s.Seed, s.Actions), func(t *testing.T) {
			if err := RunChaos(t.TempDir(), bins, s.Seed, s.Actions, t.Logf); err != nil {
				t.Fatalf("regression seed %d (%s): %v", s.Seed, s.Note, err)
			}
		})
	}
}

// TestChaosSweep is the longer seeded run for the dedicated CI job: fresh
// seeds at a larger action count. E2E_FULL=1 arms it.
func TestChaosSweep(t *testing.T) {
	requireE2E(t)
	if os.Getenv("E2E_FULL") == "" {
		t.Skip("set E2E_FULL=1 for the long chaos sweep")
	}
	bins := testBinaries(t)
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			if err := RunChaos(t.TempDir(), bins, seed, 200, t.Logf); err != nil {
				reportFailure(t, bins, seed, 200, err)
			}
		})
	}
}

// reportFailure minimizes a failing run to its shortest failing prefix and
// appends it to the regression corpus before failing the test.
func reportFailure(t *testing.T, bins Binaries, seed int64, n int, err error) {
	t.Helper()
	minimized := n
	if os.Getenv("E2E_NO_MINIMIZE") == "" {
		minimized = MinimizePrefix(n, 5, func(k int) bool {
			return RunChaos(t.TempDir(), bins, seed, k, t.Logf) != nil
		})
	}
	entry := Seed{Seed: seed, Actions: minimized, Note: "auto-minimized failing run"}
	if aerr := AppendSeed(seedCorpus, entry); aerr != nil {
		t.Logf("could not append %+v to %s: %v", entry, seedCorpus, aerr)
	} else {
		t.Logf("appended failing seed to %s: %+v", seedCorpus, entry)
	}
	t.Fatalf("chaos run seed=%d n=%d failed the oracle: %v", seed, n, err)
}

// TestFolderServerdCrashRecovery black-boxes the standalone folder daemon:
// raw wire deposits over TCP, SIGKILL, restart from the same -data-dir,
// every acknowledged memo recovered, then a verified-clean SIGTERM drain.
func TestFolderServerdCrashRecovery(t *testing.T) {
	requireE2E(t)
	bins := testBinaries(t)
	dir := t.TempDir()
	d := &Daemon{
		Host:      "solo",
		ReadyFile: dir + "/ready",
		LogPath:   dir + "/folderserverd.log",
		bin:       bins.Folderserverd,
	}
	d.args = []string{"-id", "0", "-host", "solo", "-listen", "127.0.0.1:0",
		"-data-dir", dir + "/data", "-ready-file", d.ReadyFile}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	addr := readyAddr(t, d.ReadyFile)

	k := symbol.K(77)
	want := map[string]bool{"one": true, "two": true, "three": true}
	for v := range want {
		if r := rawDo(t, addr, &wire.Request{Op: wire.OpPut, Key: k, Payload: []byte(v)}); r.Status != wire.StatusOK {
			t.Fatalf("put %q: %+v", v, r)
		}
	}

	d.Kill()
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	addr = readyAddr(t, d.ReadyFile)
	got := map[string]bool{}
	for i := 0; i < len(want); i++ {
		r := rawDo(t, addr, &wire.Request{Op: wire.OpGetSkip, Key: k})
		if r.Status != wire.StatusOK {
			t.Fatalf("recovered take %d: %+v", i, r)
		}
		got[string(r.Payload)] = true
	}
	if r := rawDo(t, addr, &wire.Request{Op: wire.OpGetSkip, Key: k}); r.Status != wire.StatusEmpty {
		t.Fatalf("extra memo after recovery: %+v", r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if err := d.Term(); err != nil {
		t.Fatal(err)
	}
}

func readyAddr(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First line only: with -debug-addr the file carries a `debug <addr>`
	// second line.
	line, _, _ := strings.Cut(string(data), "\n")
	return strings.TrimSpace(line)
}

// rawDo sends one wire request over a fresh TCP mux channel — the protocol
// exactly as a non-Go client would speak it.
func rawDo(t *testing.T, addr string, q *wire.Request) *wire.Response {
	t.Helper()
	conn, err := transport.NewTCP().Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux(conn, transport.DefaultMTU)
	go mux.Run()
	defer mux.Close()
	ch := mux.Channel(1)
	if err := ch.Send(wire.EncodeRequest(q)); err != nil {
		t.Fatal(err)
	}
	buf, err := ch.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// --- deterministic unit tests (always run) ---

// TestSeedReplayDeterminism proves a seed fully determines its trace: the
// property the regression corpus depends on.
func TestSeedReplayDeterminism(t *testing.T) {
	seeds, err := LoadSeeds(seedCorpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range append(seeds, Seed{Seed: 424242, Actions: 500}) {
		a := GenActions(s.Seed, s.Actions, hostCount, keyCount, pairCount)
		b := GenActions(s.Seed, s.Actions, hostCount, keyCount, pairCount)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations disagree", s.Seed)
		}
		if len(a) != s.Actions {
			t.Fatalf("seed %d: %d actions, want %d", s.Seed, len(a), s.Actions)
		}
	}
	x := GenActions(1, 200, hostCount, keyCount, pairCount)
	y := GenActions(2, 200, hostCount, keyCount, pairCount)
	if reflect.DeepEqual(x, y) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestGenActionsForcedCoverage: every trace long enough for the smoke
// gate contains at least one kill and one sever, whatever the seed rolls.
func TestGenActionsForcedCoverage(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		acts := GenActions(seed, 100, hostCount, keyCount, pairCount)
		kills, severs := 0, 0
		for _, a := range acts {
			switch a.Type {
			case ActKill:
				kills++
			case ActSever:
				severs++
			}
			if a.Host >= hostCount || a.Key >= keyCount || a.Pair >= pairCount || a.Node >= hostCount {
				t.Fatalf("seed %d: action out of range: %+v", seed, a)
			}
		}
		if kills == 0 || severs == 0 {
			t.Fatalf("seed %d: kills=%d severs=%d, want both >= 1", seed, kills, severs)
		}
	}
}

// TestOracleSelfTest injects deliberate duplicate, loss, and phantom
// outcomes and requires the oracle to flag each — the oracle is only
// trustworthy if it provably fails on the bugs it exists to catch.
func TestOracleSelfTest(t *testing.T) {
	clean := NewLedger()
	clean.AckPut("a")
	clean.Consume("a")
	clean.UncertainPut("b")
	clean.AckPut("c")
	clean.UncertainTake() // may have eaten c
	if err := clean.Check(); err != nil {
		t.Fatalf("clean history flagged: %v", err)
	}

	dup := NewLedger()
	dup.AckPut("a")
	dup.Consume("a")
	dup.Consume("a")
	if err := dup.Check(); err == nil {
		t.Fatal("duplicate consumption not flagged")
	}

	loss := NewLedger()
	loss.AckPut("a")
	if err := loss.Check(); err == nil {
		t.Fatal("lost acked value not flagged")
	}

	phantom := NewLedger()
	phantom.Consume("never-deposited")
	if err := phantom.Check(); err == nil {
		t.Fatal("phantom value not flagged")
	}

	uncertain := NewLedger()
	uncertain.UncertainPut("maybe")
	uncertain.Consume("maybe") // landed once: fine
	if err := uncertain.Check(); err != nil {
		t.Fatalf("0-or-1 uncertain landing flagged: %v", err)
	}
	uncertain.Consume("maybe") // landed twice: bug
	if err := uncertain.Check(); err == nil {
		t.Fatal("uncertain value consumed twice not flagged")
	}
}

// TestMinimizePrefix: the corpus minimizer finds the exact threshold with
// a generous probe budget and still returns a failing prefix on a tight
// one.
func TestMinimizePrefix(t *testing.T) {
	probes := 0
	got := MinimizePrefix(120, 20, func(n int) bool { probes++; return n >= 37 })
	if got != 37 {
		t.Fatalf("minimized to %d, want 37 (%d probes)", got, probes)
	}
	got = MinimizePrefix(120, 2, func(n int) bool { return n >= 37 })
	if got < 37 || got > 120 {
		t.Fatalf("budget-capped minimize returned %d, outside [37,120]", got)
	}
}

// TestSeedCorpusWellFormed keeps regression_seeds.json loadable and sane.
func TestSeedCorpusWellFormed(t *testing.T) {
	seeds, err := LoadSeeds(seedCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty regression corpus: expected at least the founding seeds")
	}
	for _, s := range seeds {
		if s.Actions < 1 {
			t.Fatalf("corpus entry %+v has no actions", s)
		}
	}
}

// TestAppendSeedDedups: re-reporting a known seed must not grow the file.
func TestAppendSeedDedups(t *testing.T) {
	path := t.TempDir() + "/seeds.json"
	s := Seed{Seed: 9, Actions: 40, Note: "x"}
	for i := 0; i < 3; i++ {
		if err := AppendSeed(path, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := AppendSeed(path, Seed{Seed: 9, Actions: 41}); err != nil {
		t.Fatal(err)
	}
	seeds, err := LoadSeeds(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("corpus has %d entries, want 2 (dedup failed): %+v", len(seeds), seeds)
	}
}

// TestProxySeverHeal pins the proxy's failure semantics: a severed link
// kills live pipes and refuses new ones at the application level while
// still accepting TCP; healing restores forwarding.
func TestProxySeverHeal(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			c, err := echo.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()

	p, err := NewProxy("127.0.0.1:0", echo.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	roundTrip := func() error {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			return err
		}
		defer conn.Close()
		if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
			return err
		}
		if _, err := conn.Write([]byte("hi")); err != nil {
			return err
		}
		buf := make([]byte, 2)
		for read := 0; read < 2; {
			n, err := conn.Read(buf[read:])
			if err != nil {
				return err
			}
			read += n
		}
		return nil
	}
	if err := roundTrip(); err != nil {
		t.Fatalf("healthy proxy: %v", err)
	}
	p.Sever()
	if err := roundTrip(); err == nil {
		t.Fatal("severed proxy still forwards")
	}
	p.Heal()
	if err := roundTrip(); err != nil {
		t.Fatalf("healed proxy: %v", err)
	}
}
