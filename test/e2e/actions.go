package e2e

import (
	"fmt"
	"math/rand"
)

// ActionType enumerates the chaos mix. Weights live in actionWeights; the
// generated trace is a pure function of the seed (see GenActions), which is
// what makes regression seeds replayable.
type ActionType int

const (
	ActPut        ActionType = iota // library put, unique value
	ActPutCLI                       // same through the memo binary (-json)
	ActPutDelayed                   // put_delayed: hide value at Key until triggered, reveal at Key2
	ActGet                          // blocking take (async, bounded by opTimeout)
	ActGetSkip                      // non-blocking take
	ActGetSkipCLI                   // same through the memo binary
	ActAltTake                      // blocking multi-key take (async)
	ActAltSkip                      // non-blocking multi-key take
	ActWatch                        // get_copy: observe without consuming (async)
	ActPump                         // pump a program image, fetch it back
	ActKill                         // SIGKILL a node, restart it, re-register via the CLI
	ActSever                        // cut one directed inter-node link
	ActHeal                         // heal the oldest severed link
	actTypeCount
)

var actionNames = [...]string{
	"put", "put_cli", "put_delayed", "get", "get_skip", "get_skip_cli",
	"alt_take", "alt_skip", "watch", "pump", "kill", "sever", "heal",
}

func (a ActionType) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// actionWeights is the mix, in percent. Deposits outnumber takes slightly
// so folders stay non-empty and blocking takes resolve fast; chaos actions
// are rare enough that most of the trace is plain traffic *through* the
// faults they cause.
var actionWeights = [actTypeCount]int{
	ActPut:        22,
	ActPutCLI:     5,
	ActPutDelayed: 6,
	ActGet:        8,
	ActGetSkip:    22,
	ActGetSkipCLI: 5,
	ActAltTake:    5,
	ActAltSkip:    6,
	ActWatch:      7,
	ActPump:       3,
	ActKill:       2,
	ActSever:      3,
	ActHeal:       6,
}

// Action is one step of a run. All fields are indices into the cluster's
// fixed host/key/pair tables so a trace is meaningful independent of ports
// and temp directories.
type Action struct {
	Type ActionType
	Host int   // entry host issuing the op
	Key  int   // key index (primary)
	Key2 int   // second key (put_delayed dest)
	Keys []int // key set for alt ops
	Node int   // node index for kill
	Pair int   // directed-link index for sever/heal
}

// GenActions derives the full action trace from the seed. It is a pure
// function — same (seed, n, shape) in, same trace out — and deterministically
// guarantees at least one kill and one sever/heal pair so even a short
// smoke exercises both recovery paths.
func GenActions(seed int64, n, hosts, keys, pairs int) []Action {
	rng := rand.New(rand.NewSource(seed))
	pick := func() ActionType {
		total := 0
		for _, w := range actionWeights {
			total += w
		}
		r := rng.Intn(total)
		for t, w := range actionWeights {
			if r < w {
				return ActionType(t)
			}
			r -= w
		}
		return ActPut
	}
	acts := make([]Action, n)
	for i := range acts {
		a := Action{
			Type: pick(),
			Host: rng.Intn(hosts),
			Key:  rng.Intn(keys),
			Key2: rng.Intn(keys),
			Node: rng.Intn(hosts),
			Pair: rng.Intn(pairs),
		}
		if a.Type == ActAltTake || a.Type == ActAltSkip {
			k := 2 + rng.Intn(2)
			seen := map[int]bool{}
			for len(a.Keys) < k {
				x := rng.Intn(keys)
				if !seen[x] {
					seen[x] = true
					a.Keys = append(a.Keys, x)
				}
			}
		}
		acts[i] = a
	}
	// Forced coverage: if the weighted draw produced no kill or no sever,
	// overwrite fixed positions (deterministic — depends only on the trace).
	hasKill, hasSever := false, false
	for _, a := range acts {
		hasKill = hasKill || a.Type == ActKill
		hasSever = hasSever || a.Type == ActSever
	}
	if n >= 4 {
		if !hasSever {
			acts[n/3] = Action{Type: ActSever, Pair: acts[n/3].Pair}
			acts[n/3+1] = Action{Type: ActHeal}
		}
		if !hasKill {
			acts[2*n/3] = Action{Type: ActKill, Node: acts[2*n/3].Node}
		}
	}
	return acts
}
