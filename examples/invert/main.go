// Invert is the paper's running example application (§4.3 names an
// application "invert" spread over three SPARCs and an SP-1): a boss/worker
// matrix inversion on the exact Fig. 3 topology.
//
// The algorithm is pipelined Gauss-Jordan elimination on the augmented
// matrix [A | I]. Rows are distributed to workers through folders; at pivot
// step k the worker owning row k publishes the normalized pivot row into a
// single-assignment folder, and every worker GetCopy-s it (non-consuming,
// so one memo serves all readers — no broadcasting, §5) and eliminates its
// own rows. No barriers are needed: a worker can only publish pivot k after
// applying pivots 0..k-1 to it, which orders the pipeline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/transferable"
)

// The ADF mirrors the paper's §4.3 example (hosts shortened for output).
const adfText = `APP invert
HOSTS
glen   1   sun4 1
aurora 1   sun4 1
joliet 1   sun4 1
bonnie 128 sp1  sun4*0.5
FOLDERS
0 glen
1 aurora
2 joliet
3-8 bonnie
PROCESSES
0 boss glen
1 worker aurora
2 worker joliet
3 worker bonnie
PPC
glen <-> aurora 1
glen <-> joliet 1
glen <-> bonnie 2
`

const n = 24 // matrix dimension
const workers = 3

func main() {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	// Deterministic diagonally dominant matrix: always invertible.
	rng := rand.New(rand.NewSource(42))
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Float64() - 0.5
		}
		a[i][i] += float64(n)
	}

	inv := make([][]float64, n)
	err = c.Run(map[string]cluster.ProcFunc{
		"boss":   func(p adf.Process, m *core.Memo) error { return boss(m, a, inv) },
		"worker": func(p adf.Process, m *core.Memo) error { return worker(m, int(p.ID)-1) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify A × A⁻¹ ≈ I.
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i][k] * inv[k][j]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if d := math.Abs(sum - want); d > maxErr {
				maxErr = d
			}
		}
	}
	fmt.Printf("inverted %dx%d matrix across %d workers; max |A·A⁻¹ - I| = %.2e\n", n, n, workers, maxErr)
	if maxErr > 1e-9 {
		log.Fatal("inversion inaccurate")
	}
	fmt.Println("observed memo distribution across hosts:")
	for host, share := range c.HostPutShares() {
		fmt.Printf("  %-8s %.1f%%\n", host, 100*share)
	}
}

// rowKey addresses worker w's initial row i; pivotKey the published pivot
// row for step k; resultKey the finished inverse row i.
func rowList(row []float64) *transferable.List {
	l := &transferable.List{}
	for _, v := range row {
		l.Append(transferable.Float64(v))
	}
	return l
}

func listRow(v transferable.Value) []float64 {
	l := v.(*transferable.List)
	out := make([]float64, l.Len())
	for i := range out {
		f, _ := transferable.AsFloat(l.At(i))
		out[i] = f
	}
	return out
}

// boss distributes augmented rows [A_i | e_i] and collects inverse rows.
func boss(m *core.Memo, a, inv [][]float64) error {
	for i := 0; i < n; i++ {
		aug := make([]float64, 2*n)
		copy(aug, a[i])
		aug[n+i] = 1
		if err := m.Put(m.NamedKey("row", uint32(i)), rowList(aug)); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		v, err := m.Get(m.NamedKey("result", uint32(i)))
		if err != nil {
			return err
		}
		row := listRow(v)
		inv[i] = row[n:]
	}
	return nil
}

// worker w owns rows i with i % workers == w.
func worker(m *core.Memo, w int) error {
	rows := map[int][]float64{}
	for i := w; i < n; i += workers {
		v, err := m.Get(m.NamedKey("row", uint32(i)))
		if err != nil {
			return err
		}
		rows[i] = listRow(v)
	}
	for k := 0; k < n; k++ {
		if row, mine := rows[k]; mine {
			// Normalize and publish the pivot row (single assignment; all
			// workers read copies).
			p := row[k]
			if math.Abs(p) < 1e-12 {
				return fmt.Errorf("zero pivot at %d", k)
			}
			for j := range row {
				row[j] /= p
			}
			if err := m.Put(m.NamedKey("pivot", uint32(k)), rowList(row)); err != nil {
				return err
			}
		}
		pv, err := m.GetCopy(m.NamedKey("pivot", uint32(k)))
		if err != nil {
			return err
		}
		pivot := listRow(pv)
		for i, row := range rows {
			if i == k {
				continue
			}
			f := row[k]
			if f == 0 {
				continue
			}
			for j := range row {
				row[j] -= f * pivot[j]
			}
		}
	}
	for i, row := range rows {
		if err := m.Put(m.NamedKey("result", uint32(i)), rowList(row)); err != nil {
			return err
		}
	}
	return nil
}
