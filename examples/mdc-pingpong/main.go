// MDC ping-pong: two actors on different hosts exchange a counter, with a
// supervisor join-pattern assembling the final report — the Message Driven
// Computing layer the paper implemented on D-Memo (§2).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/mdc"
	"repro/internal/symbol"
	"repro/internal/transferable"
)

const adfText = `APP pingpong
HOSTS
east 1 sun4 1
west 1 sun4 1
FOLDERS
0 east
1 west
PROCESSES
0 boss east
1 worker west
PPC
east <-> west 1
`

const rounds = 200

func main() {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	east, err := c.NewMemo("east")
	if err != nil {
		log.Fatal(err)
	}
	west, err := c.NewMemo("west")
	if err != nil {
		log.Fatal(err)
	}
	sysE := mdc.NewSystem(east)
	sysW := mdc.NewSystem(west)
	defer sysE.Shutdown()
	defer sysW.Shutdown()

	done := make(chan int64, 1)
	start := time.Now()

	// Ping lives on east; it bounces the counter until `rounds`.
	var pong mdc.Ref
	ping := sysE.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		if n >= rounds {
			// Report to the supervisor's join pattern, and pass the final
			// count on so the strictly-alternating peer also terminates.
			if err := ctx.Send(mdc.Ref{Key: east.NamedKey("report-east")}, transferable.Int64(n)); err != nil {
				return err
			}
			if err := ctx.Send(pong, transferable.Int64(n+1)); err != nil {
				return err
			}
			ctx.Stop()
			return nil
		}
		return ctx.Send(pong, transferable.Int64(n+1))
	})

	// Pong lives on west.
	pong = sysW.Spawn(func(ctx *mdc.Context, msg transferable.Value) error {
		n, _ := transferable.AsInt(msg)
		if n >= rounds {
			if err := ctx.Send(mdc.Ref{Key: west.NamedKey("report-west")}, transferable.Int64(n)); err != nil {
				return err
			}
			ctx.Stop()
			return nil
		}
		return ctx.Send(ping, transferable.Int64(n+1))
	})

	// Supervisor: a join pattern that fires once both reports are in.
	sysE.When([]symbol.Key{east.NamedKey("report-east"), east.NamedKey("report-west")}, false,
		func(vals []transferable.Value) error {
			a, _ := transferable.AsInt(vals[0])
			done <- a
			return nil
		})

	// Kick off. Whoever crosses `rounds` first reports and forwards the
	// final count, so its peer crosses and reports too.
	if err := sysE.Send(ping, transferable.Int64(0)); err != nil {
		log.Fatal(err)
	}

	select {
	case n := <-done:
		elapsed := time.Since(start)
		fmt.Printf("ping-pong finished at count %d in %v (%.0f msgs/sec)\n",
			n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	case <-time.After(30 * time.Second):
		log.Fatal("ping-pong stalled")
	}
}
