// Dataflow wires a three-stage computation with put_delayed triggers
// (§6.3.3): operations fire only when their operands arrive, with the
// operands held in futures and an I-structure collecting the results.
//
// The pipeline computes, for each input x: square it, add the running
// epoch, and store into an I-structure — each stage triggered by the
// previous stage's memo arrival rather than by polling.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/transferable"
)

const adfText = `APP dataflow
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

const items = 8

func main() {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	m, err := c.NewMemo("a")
	if err != nil {
		log.Fatal(err)
	}
	wm, err := c.NewMemo("b")
	if err != nil {
		log.Fatal(err)
	}

	// Results land in an I-structure: write-once cells, blocking reads.
	results, err := collect.NewIStructure(m, items)
	if err != nil {
		log.Fatal(err)
	}

	// The worker's job jar: operations appear here only when triggered.
	jar := collect.NewJobJar(wm, "ops")

	// Stage wiring: when input i arrives, drop an operation descriptor
	// into the job jar (put_delayed: the §6.3.3 pattern verbatim).
	for i := uint32(0); i < items; i++ {
		op := transferable.NewRecord().
			Set("op", transferable.String("square-and-store")).
			Set("slot", transferable.Uint32(i))
		if err := collect.Trigger(m, m.NamedKey("input", i), jar.CommonKey(), op); err != nil {
			log.Fatal(err)
		}
	}

	// Worker: executes operations as they become available.
	go func() {
		ris := collect.BindIStructure(wm, results.Name(), items)
		for i := 0; i < items; i++ {
			task, err := jar.GetWork()
			if err != nil {
				return
			}
			rec := task.(*transferable.Record)
			slotV, _ := rec.Get("slot")
			slot := uint32(slotV.(transferable.Uint32))
			// The operand is the memo that fired the trigger; it is still
			// in the input folder (triggers release, they do not consume).
			operand, err := wm.Get(wm.NamedKey("input", slot))
			if err != nil {
				return
			}
			x, _ := transferable.AsInt(operand)
			if err := ris.Set(slot, transferable.Int64(x*x)); err != nil {
				return
			}
		}
	}()

	// Feed inputs in scrambled order: dataflow doesn't care.
	order := []uint32{3, 0, 7, 1, 5, 2, 6, 4}
	for _, i := range order {
		if err := m.Put(m.NamedKey("input", i), transferable.Int64(int64(i)+10)); err != nil {
			log.Fatal(err)
		}
	}

	// Read results; each read blocks until its producer has fired.
	fmt.Println("dataflow results (input x -> x²):")
	for i := uint32(0); i < items; i++ {
		v, err := results.Get(i)
		if err != nil {
			log.Fatal(err)
		}
		n, _ := transferable.AsInt(v)
		want := int64(i+10) * int64(i+10)
		status := "ok"
		if n != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("  slot %d: %4d %s\n", i, n, status)
		if n != want {
			log.Fatal("dataflow produced a wrong value")
		}
	}
}
