// Lucid streams: parse and run Lucid dataflow programs on D-Memo, sharing
// the demand-driven memo table between evaluators on different hosts
// through the folder space (§2, reference [5]).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/lucid"
)

const adfText = `APP lucidstreams
HOSTS
a 2 sun4 1
b 2 sun4 1
FOLDERS
0-1 a
2-3 b
PROCESSES
0 boss a
1 worker b
PPC
a <-> b 1
`

const program = `
# Classic Lucid: streams defined by equations.
n     = 1 fby n + 1;          # the naturals from 1
squares = n * n;
fib   = 0 fby g;              # fibonacci via a helper stream
g     = 1 fby fib + g;
evens = n whenever n % 2 == 0;
sumsq = first squares fby sumsq + next squares;
answer = sumsq asa n == 10;   # sum of first 10 squares, as soon as known
`

func main() {
	prog, err := lucid.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program:")
	fmt.Print(prog.String())

	// Local evaluation first.
	ev := lucid.NewEvaluator(prog, nil)
	for _, stream := range []string{"n", "squares", "fib", "evens"} {
		vals, err := ev.Take(stream, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s = %v ...\n", stream, vals)
	}
	answer, err := ev.At("answer", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer (sum of first 10 squares) = %d\n", answer)
	if answer != 385 {
		log.Fatal("wrong answer")
	}

	// Distributed evaluation: two evaluators on different hosts share one
	// memo table held in folders.
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ma, err := c.NewMemo("a")
	if err != nil {
		log.Fatal(err)
	}
	mb, err := c.NewMemo("b")
	if err != nil {
		log.Fatal(err)
	}
	evA := lucid.NewEvaluator(prog, lucid.NewFolderCache(ma))
	evB := lucid.NewEvaluator(prog, lucid.NewFolderCache(mb))
	if _, err := evA.At("fib", 30); err != nil { // host a fills the table
		log.Fatal(err)
	}
	v, err := evB.At("fib", 30) // host b reads host a's work
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed memo table: fib(30) = %d (computed on host a, read on host b)\n", v)
	if v != 832040 {
		log.Fatal("wrong fib")
	}
}
