// Primes counts primes below a bound with the job-jar paradigm (§6.2.4):
// the boss drops range tasks into a common jar; workers drain it with
// get_alt against their individual jars, which carry per-process orders
// (here: a final "report" task that only a specific process may perform,
// the paper's file-I/O example).
package main

import (
	"fmt"
	"log"

	"repro/internal/adf"
	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/transferable"
)

const adfText = `APP primes
HOSTS
boss 1 sun4 1
w1   2 sun4 1
w2   2 sun4 1
FOLDERS
0 boss
1 w1
2 w2
PROCESSES
0 boss boss
1 worker w1
2 worker w2
3 worker w1
4 worker w2
PPC
boss <-> w1 1
boss <-> w2 1
`

const (
	limit     = 100000
	chunk     = 5000
	nWorkers  = 4
	wantCount = 9592 // π(100000)
)

func main() {
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	err = c.Run(map[string]cluster.ProcFunc{
		"boss":   bossProc,
		"worker": workerProc,
	})
	if err != nil {
		log.Fatal(err)
	}
}

func bossProc(p adf.Process, m *core.Memo) error {
	jar := collect.NewJobJar(m, "ranges")
	results := collect.NamedQueue(m, "results")

	tasks := 0
	for lo := 2; lo < limit; lo += chunk {
		hi := lo + chunk
		if hi > limit {
			hi = limit
		}
		task := transferable.NewList(transferable.Int64(int64(lo)), transferable.Int64(int64(hi)))
		if err := jar.Add(task); err != nil {
			return err
		}
		tasks++
	}
	total := int64(0)
	for i := 0; i < tasks; i++ {
		v, err := results.Dequeue()
		if err != nil {
			return err
		}
		n, _ := transferable.AsInt(v)
		total += n
	}
	// Per-process orders: process 1 reports, everyone else stops. The
	// report order goes in process 1's *individual* jar — only it can take
	// the task (the paper's "operations that must be performed by a
	// particular process").
	// The report order doubles as process 1's stop.
	if err := jar.AddLocal(1, transferable.NewList(transferable.String("report"), transferable.Int64(total))); err != nil {
		return err
	}
	for pid := uint32(2); pid <= nWorkers; pid++ {
		if err := jar.AddLocal(pid, transferable.NewList(transferable.String("stop"))); err != nil {
			return err
		}
	}
	if total != wantCount {
		return fmt.Errorf("π(%d) = %d, want %d", limit, total, wantCount)
	}
	return nil
}

func workerProc(p adf.Process, m *core.Memo) error {
	jar := collect.NewJobJar(m, "ranges").WithLocal(uint32(p.ID))
	results := collect.NamedQueue(m, "results")
	for {
		task, err := jar.GetWork() // get_alt over individual + common jars
		if err != nil {
			return err
		}
		l := task.(*transferable.List)
		if s, ok := transferable.AsString(l.At(0)); ok {
			switch s {
			case "stop":
				return nil
			case "report":
				n, _ := transferable.AsInt(l.At(1))
				fmt.Printf("process %d reports: %d primes below %d\n", p.ID, n, limit)
				return nil
			}
		}
		lo, _ := transferable.AsInt(l.At(0))
		hi, _ := transferable.AsInt(l.At(1))
		count := int64(0)
		for x := lo; x < hi; x++ {
			if isPrime(x) {
				count++
			}
		}
		if err := results.Enqueue(transferable.Int64(count)); err != nil {
			return err
		}
	}
}

func isPrime(x int64) bool {
	if x < 2 {
		return false
	}
	for d := int64(2); d*d <= x; d++ {
		if x%d == 0 {
			return false
		}
	}
	return true
}
