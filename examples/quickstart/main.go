// Quickstart: boot a two-host D-Memo cluster, share data through folders,
// and coordinate with a job jar — the smallest useful program against the
// Memo API (paper §6).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/transferable"
)

// The Application Description File (paper §4.3): two workstations, folder
// servers on both, one duplex link.
const adfText = `APP quickstart
HOSTS
left  1 sun4 1
right 1 sun4 1
FOLDERS
0 left
1 right
PROCESSES
0 boss left
1 worker right
PPC
left <-> right 1
`

func main() {
	// Boot the simulated network: memo server per host, folder servers
	// placed per the ADF, application registered everywhere (§4.4).
	c, err := cluster.BootADF(adfText, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	// Each process gets a Memo handle bound to its host.
	boss, err := c.NewMemo("left")
	if err != nil {
		log.Fatal(err)
	}
	worker, err := c.NewMemo("right")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Basic put/get: any process can deposit into any folder; folders
	//    are created on first touch.
	greeting := boss.NamedKey("greeting")
	if err := boss.Put(greeting, transferable.String("hello from the left host")); err != nil {
		log.Fatal(err)
	}
	v, err := worker.Get(greeting)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := transferable.AsString(v)
	fmt.Println("worker got:", s)

	// 2. A job jar (§6.2.4): the boss drops tasks, the worker drains them.
	jar := collect.NewJobJar(boss, "work")
	for i := 1; i <= 5; i++ {
		if err := jar.Add(transferable.Int64(int64(i))); err != nil {
			log.Fatal(err)
		}
	}
	wjar := collect.NewJobJar(worker, "work")
	sum := int64(0)
	for i := 0; i < 5; i++ {
		task, err := wjar.GetWork()
		if err != nil {
			log.Fatal(err)
		}
		n, _ := transferable.AsInt(task)
		sum += n * n
	}
	fmt.Println("worker processed 5 tasks, checksum:", sum)

	// 3. A future (§6.2.5): assign-once, any number of readers.
	fut, err := collect.NewFuture(boss)
	if err != nil {
		log.Fatal(err)
	}
	go fut.Resolve(transferable.Int64(sum))
	bound := collect.BindFuture(worker, fut.Name())
	result, err := bound.Wait()
	if err != nil {
		log.Fatal(err)
	}
	n, _ := transferable.AsInt(result)
	fmt.Println("future resolved to:", n)
}
