package repro_test

import (
	"testing"

	"repro"
	"repro/internal/transferable"
)

// TestFacadeQuickstart exercises the public facade exactly as README's
// quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	const adfText = `APP facade
HOSTS
left 1 sun4 1
right 1 sun4 1
FOLDERS
0 left
1 right
PROCESSES
0 boss left
1 worker right
PPC
left <-> right 1
`
	f, err := repro.ParseADF(adfText)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.ValidateADF(f); err != nil {
		t.Fatal(err)
	}
	c, err := repro.Boot(f, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	boss, err := c.NewMemo("left")
	if err != nil {
		t.Fatal(err)
	}
	worker, err := c.NewMemo("right")
	if err != nil {
		t.Fatal(err)
	}
	k := boss.NamedKey("inbox")
	if err := boss.Put(k, transferable.String("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := worker.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := transferable.AsString(v); s != "hello" {
		t.Fatalf("got %v", v)
	}
}

func TestFacadeBootADF(t *testing.T) {
	if _, err := repro.BootADF("garbage", repro.Options{}); err == nil {
		t.Fatal("garbage ADF booted")
	}
	c, err := repro.BootADF(`APP one
HOSTS
h 1 sun4 1
FOLDERS
0 h
PROCESSES
0 boss h
PPC
`, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
}
